"""Multiprocess runtime: real process migration between OS processes.

The simulator validates the protocol design; this backend demonstrates it
*for real*: application ranks are separate OS processes communicating
over TCP sockets (FIFO, connection-oriented — the substrate of paper
Section 2.3), and a migration actually moves a running rank into a fresh
OS process:

* the registry (the paper's scheduler) spawns the initialized process,
  which listens and accepts connections from the start (Fig. 7 line 1);
* the migrating process stops accepting, sends ``peer_migrating`` as its
  last message on every connection, drains until each peer's
  ``end_of_message`` arrives (Fig. 5), ships its received-message-list
  and its **machine-independent state blob** (:mod:`repro.codec`) to the
  new process, and exits;
* peers discover the new location on demand: a failed/refused connect
  triggers a registry lookup — no broadcast, no forwarding, and the old
  process is gone (no residual dependency).

The paper's out-of-band disconnection signal is replaced by in-band
``peer_migrating`` frames: an OS process blocked in receive is already
watching all its sockets, so the separate signal (needed in PVM to
interrupt a *computing* process) reduces to the poll-point check.

Worker architecture mirrors the simulator: one reader thread per socket
feeds a single inbox queue; the protocol logic is single-threaded on top.

**Crash recovery** (``MPCluster(recovery=RecoverySpec(...))``) reuses
the migration machinery as its restart path — recovery *is* a migration
whose source is a disk checkpoint. With recovery enabled, each rank
checkpoints a wrapper blob (program state + undelivered recvlist + a
communication-state epoch) at poll points, data frames carry
per-(src, dest) sequence numbers, and the connection handshake exchanges
receive cursors so either side can replay its retained outbox after a
reconnect. A :class:`~repro.recovery.supervisor.Supervisor` detects a
dead rank, spawns a replacement through the ordinary ``_init_main``
accept-from-start path, ships the checkpoint exactly as a migrating
source would ship live state, and the directory record flips on the same
``restore_complete``. Duplicate deliveries from replay + deterministic
re-execution are dropped by the receiver's sequence cursor, so the
stream stays exactly-once. See ``docs/recovery.md``.
"""

from __future__ import annotations

import logging
import multiprocessing as mp
import os
import queue
import shutil
import signal as _signal
import socket
import threading
import time
import uuid
from dataclasses import dataclass
from typing import Any, Callable

from repro.codec import NATIVE, Architecture, decode, encode, encode_parts
from repro.core.adaptive import (
    AdaptiveChunkPolicy,
    ChunkController,
    coerce_chunk_bytes,
)
from repro.core.checkpointing import CheckpointStore
from repro.core.gang import ADMIT, GangAdmission
from repro.core.streaming import DEFAULT_CHUNK_BYTES, ChunkSource
from repro.directory.chordring import ChordRing
from repro.directory.hashring import HashRing
from repro.directory.spec import DirectorySpec
from repro.obs import MetricsRegistry, ObsConfig, RegistryCollector, WorkerObs
from repro.obs.metrics import POW2_BUCKETS
from repro.recovery.spec import RecoverySpec, WorkerRecoveryConfig
from repro.recovery.supervisor import Supervisor
from repro.runtime.framing import (
    FrameBatcher,
    FrameClosed,
    FrameReader,
    FrameStats,
    recv_frame,
    send_frame,
    send_frame_fast,
)
from repro.runtime.mp_directory import (
    DaemonClientConfig,
    DirectoryDaemonHost,
    MPDirectoryClient,
)

__all__ = ["MPCluster", "MPApi"]

#: Reserved keys inside shipped/checkpointed state dicts. ``__repro_comm__``
#: rides along a live migration (the communication-state epoch must move
#: with the rank); ``__repro_ckpt__`` marks a checkpoint wrapper blob.
_COMM_KEY = "__repro_comm__"
_CKPT_KEY = "__repro_ckpt__"

_BACKLOG = 16
_CONNECT_TIMEOUT = 10.0

log = logging.getLogger("repro.mp")


def _configure_logging() -> None:
    """Honor ``REPRO_MP_LOG=<level>`` (``REPRO_MP_DEBUG=1`` implies
    ``debug``) on the ``repro.mp`` logger.

    Runs in the launcher and again in each worker (fork keeps the
    handler; a spawn-style entry would reconfigure). Without either
    variable the logger stays unconfigured — warnings and above still
    reach stderr through logging's last-resort handler.
    """
    level_name = os.environ.get("REPRO_MP_LOG")
    if not level_name and os.environ.get("REPRO_MP_DEBUG"):
        level_name = "debug"
    if not level_name:
        return
    level = getattr(logging, level_name.upper(), None)
    if not isinstance(level, int):
        raise ValueError(f"REPRO_MP_LOG={level_name!r} is not a log level")
    log.setLevel(level)
    if not log.handlers:
        handler = logging.StreamHandler()
        handler.setFormatter(logging.Formatter(
            "[mp %(process)d %(created).3f] %(levelname)s %(message)s"))
        log.addHandler(handler)
        log.propagate = False


class _SharedBandwidthBudget:
    """Cross-process :class:`~repro.core.adaptive.BandwidthBudget`.

    Concurrent migrations are separate forked OS processes, so the
    fair-share ledger their :class:`ChunkController`\\ s consult must
    live in ``multiprocessing`` shared memory: slot counts and the
    pooled RTT floor are ``Value`` cells inherited across fork, guarded
    by one shared lock. The duck-typed surface (``acquire`` / ``release``
    / ``share`` / ``observe_latency`` / ``rtt_floor``) matches the
    in-process ledger exactly, so the controller code is byte-identical
    in both runtimes.
    """

    def __init__(self, ctx) -> None:
        self._lock = ctx.Lock()
        self._active = ctx.Value("i", 0, lock=False)
        self._peak = ctx.Value("i", 0, lock=False)
        self._acquires = ctx.Value("i", 0, lock=False)
        #: 0.0 encodes "no observation yet" (a real ship latency is > 0,
        #: and observe_latency ignores non-positive samples anyway)
        self._floor = ctx.Value("d", 0.0, lock=False)

    def acquire(self) -> None:
        with self._lock:
            self._active.value += 1
            self._acquires.value += 1
            if self._active.value > self._peak.value:
                self._peak.value = self._active.value

    def release(self) -> None:
        with self._lock:
            if self._active.value > 0:
                self._active.value -= 1

    @property
    def active(self) -> int:
        with self._lock:
            return self._active.value

    @property
    def share(self) -> int:
        return max(1, self.active)

    def observe_latency(self, latency: float) -> None:
        if latency <= 0.0:
            return
        with self._lock:
            if self._floor.value == 0.0 or latency < self._floor.value:
                self._floor.value = latency

    @property
    def rtt_floor(self) -> float | None:
        with self._lock:
            return self._floor.value or None

    def stats(self) -> dict:
        """Ledger counters for tests and bench artifacts."""
        with self._lock:
            return {"active": self._active.value,
                    "peak_active": self._peak.value,
                    "acquires": self._acquires.value,
                    "rtt_floor": self._floor.value or None}


# ---------------------------------------------------------------------------
# registry (the scheduler), runs as a thread in the launcher process
# ---------------------------------------------------------------------------

class _LogicalDirectory:
    """Sharded / Chord view of the registry's location records.

    The default mp directory keeps a single registry TCP server (pass
    ``DirectorySpec(..., daemons=True)`` for real out-of-process shard
    daemons — :mod:`repro.runtime.mp_directory`); here the
    *partitioning* is what is exercised: records live in
    per-node stores assigned by the same :class:`HashRing` /
    :class:`ChordRing` structures the simulator's daemons use, every
    lookup is routed to its serving node (walking real finger-table hops
    for chord), and per-node counters expose the load split the ablation
    measures. Writes are applied under the registry lock, version-stamped
    to each owner, exactly as the simulator's publisher would converge
    them.
    """

    def __init__(self, spec: DirectorySpec,
                 metrics: MetricsRegistry | None = None):
        self.spec = spec
        ids = list(range(spec.nodes))
        if spec.backend == "sharded":
            self.topology = HashRing(ids, replication=spec.replication,
                                     vnodes=spec.vnodes)
        else:
            self.topology = ChordRing(ids, replication=spec.replication,
                                      bits=spec.bits)
        #: node -> rank -> {"status", "addr", "init_addr", "version"}
        self.stores: dict[int, dict[int, dict]] = {i: {} for i in ids}
        # the single source of truth for per-node load counters; the
        # dict-shaped view the ablation reads is derived in stats()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._counters = {
            i: {name: self.metrics.counter(f"dir.{name}", node=i)
                for name in ("lookups", "forwards", "updates")}
            for i in ids}
        self._versions: dict[int, int] = {}

    def write(self, rank: int, status: str, addr: tuple | None,
              init_addr: tuple | None) -> None:
        version = self._versions.get(rank, 0) + 1
        self._versions[rank] = version
        rec = {"status": status, "addr": addr, "init_addr": init_addr,
               "version": version}
        for node in self.topology.owners(rank):
            self.stores[node][rank] = rec
            self._counters[node]["updates"].inc()

    def lookup(self, rank: int, entry: int | None = None
               ) -> tuple[dict | None, int]:
        """The owning node's record of *rank*, plus hops taken to it."""
        if isinstance(self.topology, ChordRing):
            if entry is None:
                entry = rank % len(self.topology.nodes)
            path = self.topology.route(entry, rank)
            for node in path[:-1]:
                self._counters[node]["forwards"].inc()
            serving, hops = path[-1], len(path) - 1
        else:
            serving, hops = self.topology.primary(rank), 0
        self._counters[serving]["lookups"].inc()
        return self.stores[serving].get(rank), hops

    def stats(self) -> dict[int, dict[str, int]]:
        """Per-node counter view, derived from the metrics registry."""
        return {i: {name: c.value for name, c in counters.items()}
                for i, counters in self._counters.items()}


class _Registry:
    """Rank → address table plus migration coordination."""

    def __init__(self, directory: "DirectorySpec | str | None" = None,
                 obs: ObsConfig | None = None,
                 dir_wal: str | None = None) -> None:
        spec = DirectorySpec.coerce(directory)
        self.spec = spec
        self.collector = RegistryCollector() if obs is not None else None
        metrics = self.collector.metrics if self.collector else None
        #: daemons=True: records live in out-of-process shard daemons
        #: (repro.runtime.mp_directory); the registry keeps its in-memory
        #: maps as the authoritative scheduler-fallback view and the
        #: ("lookup",) ctl frame answers from those
        self.daemon_host = (DirectoryDaemonHost(spec, metrics=metrics,
                                                wal_dir=dir_wal)
                            if spec.distributed and spec.daemons else None)
        self.directory = (_LogicalDirectory(spec, metrics=metrics)
                          if spec.distributed and not spec.daemons
                          else None)
        # migration-window bookkeeping is always on (two clock reads per
        # migration) so the obs-on/obs-off A/B measures identical spans
        self._mig_t0: dict[int, float] = {}
        #: rank -> trace id of its in-flight migration (stamped onto the
        #: registry's migration_window record at commit)
        self._mig_trace: dict[int, str] = {}
        self.migration_windows: list[dict] = []
        #: gang-admission hooks the cluster installs: fired *outside*
        #: the registry lock when a migration window closes
        #: (restore_complete) or a rank terminates, so queued windows
        #: can dispatch without lock-order entanglement
        self.on_window_closed: Callable[[int], None] | None = None
        self.on_rank_terminated: Callable[[int], None] | None = None
        self.listener = socket.create_server(("127.0.0.1", 0))
        self.addr = self.listener.getsockname()
        self._lock = threading.Lock()
        self.locations: dict[int, tuple] = {}
        self.status: dict[int, str] = {}
        self.init_addr: dict[int, tuple] = {}
        self.worker_ctl: dict[int, socket.socket] = {}
        self.results: dict[int, Any] = {}
        self.done = threading.Event()
        self.expected_results = 0
        #: rank -> last heartbeat wall-clock (recovery-enabled runs)
        self.heartbeats: dict[int, float] = {}
        #: ranks/shards the supervisor gave up on; join() raises on these
        self.permanent_failures: dict[tuple, str] = {}
        self._threads: list[threading.Thread] = []
        t = threading.Thread(target=self._accept_loop, daemon=True)
        t.start()
        self._threads.append(t)

    def _accept_loop(self) -> None:
        while True:
            try:
                conn, _ = self.listener.accept()
            except OSError:
                return
            t = threading.Thread(target=self._serve, args=(conn,),
                                 daemon=True)
            t.start()
            self._threads.append(t)

    def _serve(self, conn: socket.socket) -> None:
        rank = None
        try:
            while True:
                frame = recv_frame(conn)
                kind = frame[0]
                if kind == "register":
                    _, rank, addr = frame
                    with self._lock:
                        self.locations[rank] = tuple(addr)
                        self.status[rank] = "running"
                        self.worker_ctl[rank] = conn
                        self._dir_write(rank)
                    # the reply carries the registry's clock so the
                    # worker can estimate its offset to the reference
                    # timeline (midpoint-of-RTT; see repro.obs.clock)
                    send_frame(conn, ("registered", time.time()))
                elif kind == "register_init":
                    _, rank, addr = frame
                    with self._lock:
                        self.init_addr[rank] = tuple(addr)
                        self._dir_write(rank)
                    send_frame(conn, ("registered", time.time()))
                elif kind == "lookup":
                    _, target = frame
                    with self._lock:
                        if self.directory is not None:
                            rec, _hops = self.directory.lookup(target)
                            # an unknown record is "starting", never
                            # terminated — the requester retries
                            st = rec["status"] if rec else "starting"
                            addr = (rec["init_addr"] if st == "migrating"
                                    else rec["addr"]) if rec else None
                        else:
                            st = self.status.get(target, "starting")
                            if st == "migrating":
                                addr = self.init_addr.get(target)
                            else:
                                addr = self.locations.get(target)
                    send_frame(conn, ("location", target, st, addr))
                elif kind == "migration_start":
                    _, rank = frame
                    with self._lock:
                        self.status[rank] = "migrating"
                        addr = self.init_addr[rank]
                        self._dir_write(rank)
                        self._mig_t0[rank] = time.time()
                    send_frame(conn, ("new_process", addr))
                elif kind == "restore_complete":
                    _, rank, addr = frame
                    with self._lock:
                        self.locations[rank] = tuple(addr)
                        self.status[rank] = "running"
                        self.init_addr.pop(rank, None)
                        self.worker_ctl[rank] = conn
                        self._dir_write(rank)
                        table = dict(self.locations)
                        t0 = self._mig_t0.pop(rank, None)
                        trace = self._mig_trace.pop(rank, None)
                        if t0 is not None:
                            window = {"rank": rank, "t0": t0,
                                      "seconds": time.time() - t0}
                            if trace is not None:
                                window["trace_id"] = trace
                            self.migration_windows.append(window)
                        else:
                            window = None
                    if window is not None and self.collector is not None:
                        tctx = ({"trace_id": trace} if trace is not None
                                else {})
                        self.collector.record(
                            "registry", "migration_window",
                            rank=window["rank"], seconds=window["seconds"],
                            **tctx)
                    send_frame(conn, ("pl_snapshot", table))
                    cb = self.on_window_closed
                    if cb is not None:
                        cb(rank)
                elif kind == "dir_membership":
                    # a worker asking for the daemon-shard membership
                    # view (after a scheduler fallback, to catch churn)
                    host = self.daemon_host
                    send_frame(conn, ("dir_membership",
                                      host.membership() if host else None))
                elif kind == "obs":
                    # one-way event/metric batch from a worker
                    if self.collector is not None:
                        self.collector.absorb(frame)
                elif kind == "hb":
                    # one-way liveness beacon (recovery-enabled workers)
                    _, rank, ts = frame
                    self.heartbeats[rank] = ts
                elif kind == "result":
                    _, rank, value = frame
                    with self._lock:
                        self.results[rank] = value
                        if len(self.results) >= self.expected_results:
                            self.done.set()
                elif kind == "terminated":
                    _, rank = frame
                    with self._lock:
                        self.status[rank] = "terminated"
                        self._dir_write(rank)
                    cb = self.on_rank_terminated
                    if cb is not None:
                        cb(rank)
                else:  # pragma: no cover - protocol error guard
                    raise ValueError(f"bad registry frame {frame!r}")
        except (FrameClosed, OSError):
            return

    def _dir_write(self, rank: int) -> None:
        """Mirror the current record into the directory (with the
        registry lock held): the in-registry logical shards, or — with
        daemons — a non-blocking publish to the shard processes (the
        host's publisher thread retransmits until every owner acks)."""
        if self.directory is not None:
            self.directory.write(rank, self.status.get(rank, "starting"),
                                 self.locations.get(rank),
                                 self.init_addr.get(rank))
        if self.daemon_host is not None:
            self.daemon_host.publish(rank,
                                     self.status.get(rank, "starting"),
                                     self.locations.get(rank),
                                     self.init_addr.get(rank))

    def signal_migrate(self, rank: int, arch_name: str,
                       trace_id: str | None = None) -> None:
        with self._lock:
            conn = self.worker_ctl[rank]
            if trace_id is not None:
                self._mig_trace[rank] = trace_id
        send_frame(conn, ("migrate", arch_name, trace_id))

    def interrupted_migration(self, rank: int) -> str | None:
        """Pop the trace id of the migration *rank* died inside.

        Returns ``None`` when the crash hit steady state. Clearing the
        window bookkeeping here keeps the recovery's eventual
        ``restore_complete`` from being measured against the dead
        migration's start time (and a later successful migration from
        absorbing it)."""
        with self._lock:
            self._mig_t0.pop(rank, None)
            return self._mig_trace.pop(rank, None)

    # -- recovery coordination (called from the launcher/supervisor) -------
    def begin_recovery(self, rank: int) -> None:
        """Mark a crashed rank ``failed``: its old address stays published
        (peers' connects fail against a dead port and retry the lookup)
        until the replacement registers and the record flips."""
        with self._lock:
            self.status[rank] = "failed"
            self.worker_ctl.pop(rank, None)
            self.init_addr.pop(rank, None)
            self._dir_write(rank)

    def set_recovering(self, rank: int) -> None:
        """The replacement registered: publish ``migrating`` so lookups
        redirect to the initialized process — the same record state a
        live migration publishes between ``migration_start`` and
        ``restore_complete``."""
        with self._lock:
            if rank not in self.init_addr:
                raise RuntimeError(
                    f"rank {rank}: no initialized process registered")
            self.status[rank] = "migrating"
            self._dir_write(rank)

    def fail_permanently(self, key: tuple, reason: str) -> None:
        with self._lock:
            self.permanent_failures[key] = reason
        self.done.set()  # unblock join(); it raises on permanent failures

    def close(self) -> None:
        try:
            self.listener.close()
        except OSError:
            pass
        # closing the ctl sockets releases workers parked for replay
        # (recovery runs outlive their results; see _park_until_teardown)
        with self._lock:
            conns = list(self.worker_ctl.values())
        for conn in conns:
            try:
                conn.close()
            except OSError:
                pass
        if self.daemon_host is not None:
            self.daemon_host.close()


# ---------------------------------------------------------------------------
# worker-side plumbing
# ---------------------------------------------------------------------------

@dataclass
class _StoredMessage:
    src: int
    tag: int
    body: Any


class _PeerLink:
    """One TCP connection to a peer, with its reader thread.

    ``fastpath`` switches both directions to the zero-copy framing
    (``sendmsg`` scatter-gather out, ``recv_into`` reader in); the wire
    format is unchanged, so a fast link interoperates with a legacy one.

    On fast links, steady-state ``data`` frames go through
    :meth:`stage`: they queue in a per-link :class:`FrameBatcher` and
    leave together — when the batcher limit fills, when the owning
    worker is about to block (it cannot be waiting on a peer that is
    itself waiting on unstaged bytes), or when a control frame must go
    out (:meth:`send` flushes first to preserve per-link FIFO order).
    ``stats`` (wire accounting; single writer per direction) makes the
    syscall savings measurable: ``frames_out - flushes`` writes saved.
    """

    def __init__(self, sock: socket.socket, rank: int, inbox: queue.Queue,
                 fastpath: bool = False,
                 stats: FrameStats | None = None):
        self.sock = sock
        self.rank = rank
        self.open = True
        self.fastpath = fastpath
        self.stats = stats
        #: the peer's receive cursor for us, as advertised in its hello
        #: (recovery runs only): everything past it replays on adoption
        self.replay_from: int | None = None
        self._batcher = (FrameBatcher(sock, stats=stats)
                         if fastpath else None)
        self._wlock = threading.Lock()
        self._reader = threading.Thread(
            target=self._read_loop, args=(inbox,), daemon=True)
        self._reader.start()

    def _read_loop(self, inbox: queue.Queue) -> None:
        try:
            if self.fastpath:
                reader = FrameReader(self.sock, stats=self.stats)
                while True:
                    inbox.put(("peer", self.rank, reader.read_frame()))
            while True:
                inbox.put(("peer", self.rank,
                           recv_frame(self.sock, stats=self.stats)))
        except (FrameClosed, OSError):
            # identify *which* link closed: a stale EOF from a replaced
            # connection must not mark its successor closed
            inbox.put(("peer_closed", self.rank, self))

    def send(self, frame: Any) -> None:
        """Write *frame* now (flushing anything staged before it)."""
        with self._wlock:
            if self._batcher is not None:
                self._batcher.flush()
            if self.fastpath:
                send_frame_fast(self.sock, frame, stats=self.stats)
            else:
                send_frame(self.sock, frame, stats=self.stats)

    def stage(self, frame: Any) -> None:
        """Queue *frame* for coalesced delivery (fast links); legacy
        links fall back to an immediate write."""
        with self._wlock:
            if self._batcher is not None:
                self._batcher.add(frame)
            elif self.fastpath:
                send_frame_fast(self.sock, frame, stats=self.stats)
            else:
                send_frame(self.sock, frame, stats=self.stats)

    def flush(self) -> None:
        if self._batcher is None:
            return
        with self._wlock:
            try:
                self._batcher.flush()
            except OSError:
                pass  # peer gone; its reader thread reports the close

    def close(self) -> None:
        self.open = False
        self.flush()
        try:
            self.sock.shutdown(socket.SHUT_WR)
        except OSError:
            pass


class MPApi:
    """The programming interface inside a multiprocess worker."""

    def __init__(self, worker: "_Worker"):
        self._w = worker

    @property
    def rank(self) -> int:
        return self._w.rank

    @property
    def size(self) -> int:
        return self._w.nranks

    @property
    def incarnation(self) -> int:
        """0 for the original process, +1 per migration (real PIDs differ)."""
        return self._w.incarnation

    @property
    def pid(self) -> int:
        import os
        return os.getpid()

    def send(self, dest: int, body: Any, tag: int = 0) -> None:
        self._w.send(dest, body, tag)

    def recv(self, src: int | None = None, tag: int | None = None
             ) -> _StoredMessage:
        return self._w.recv(src, tag)

    def compute(self, seconds: float) -> None:
        time.sleep(seconds)

    def poll_migration(self, state: dict) -> None:
        self._w.poll_migration(state)


class _Worker:
    """Protocol engine of one rank (one OS process)."""

    def __init__(self, rank: int, nranks: int, registry_addr: tuple,
                 program: Callable, initializing: bool,
                 arch: Architecture, incarnation: int,
                 fastpath: bool = True, obs: ObsConfig | None = None,
                 dir_cfg: DaemonClientConfig | None = None,
                 rec_cfg: WorkerRecoveryConfig | None = None,
                 chunk_bytes=DEFAULT_CHUNK_BYTES,
                 trace_id: str | None = None,
                 budget: "_SharedBandwidthBudget | None" = None):
        self.rank = rank
        self.nranks = nranks
        self.program = program
        self.arch = arch
        self.incarnation = incarnation
        self.fastpath = fastpath
        #: the causal trace this worker's migration spans belong to: an
        #: initialized process inherits it from the launcher; a source
        #: learns it from the ("migrate", ...) ctl frame
        self.trace_id = trace_id
        #: fixed int or AdaptiveChunkPolicy (one controller per migration)
        self.chunk_bytes = chunk_bytes
        #: host-wide fair-share ledger for concurrent adaptive transfers
        #: (fork-shared; None for fixed chunk sizes or solo migrations)
        self.budget = budget
        self.inbox: queue.Queue = queue.Queue()
        self.links: dict[int, _PeerLink] = {}
        #: every FrameStats handed to a link, including replaced links —
        #: summed into the final metrics snapshot
        self._link_stats: list[FrameStats] = []
        self.recvlist: list[_StoredMessage] = []
        self.pl: dict[int, tuple] = {}
        self.migrate_requested: str | None = None
        self.migrating = False
        #: serializes ctl-socket writes: the protocol thread (RPCs, obs
        #: batches, results) and the heartbeat thread share the socket
        self._ctl_wlock = threading.Lock()

        # -- communication-state epoch (recovery runs only) ----------------
        self.rec = rec_cfg
        #: src -> highest contiguous data seq delivered from src
        self._rx_seq: dict[int, int] = {}
        #: dest -> last data seq assigned toward dest
        self._tx_seq: dict[int, int] = {}
        #: dest -> retained [(seq, tag, body)] not yet known durable there
        self._outbox: dict[int, list[tuple]] = {}
        #: dest -> our rx cursor for dest at our last checkpoint — what a
        #: post-crash replacement of *us* would advertise; piggybacked on
        #: data frames so peers can prune their outboxes toward us
        self._durable_rx: dict[int, int] = {}
        #: src -> highest durable-rx cursor seen from src (prune marker)
        self._peer_durable: dict[int, int] = {}
        #: src -> durable cursor we last *explicitly* acked to src; the
        #: ack tick only fires for cursors that advanced past this
        self._acked_durable: dict[int, int] = {}
        self._ckpt_version = 0
        self._polls = 0
        #: False until a restored incarnation has absorbed its comm state;
        #: outbox replay toward freshly adopted links waits on it. An
        #: original (non-initializing) worker starts ready: its epoch is
        #: legitimately empty.
        self._comm_ready = rec_cfg is None or not initializing
        self._replay_pending: list[_PeerLink] = []
        #: set when the registry closes our ctl socket (cluster teardown)
        self._ctl_closed = threading.Event()
        self._ckpt_store = (
            CheckpointStore(rec_cfg.dir, delta=rec_cfg.delta_checkpoints,
                            delta_max_chain=rec_cfg.delta_max_chain,
                            delta_gc=rec_cfg.delta_gc)
            if rec_cfg is not None else None)

        self.obs: WorkerObs | None = None
        if obs is not None:
            actor = (f"p{rank}" if incarnation == 0
                     else f"p{rank}.m{incarnation}")
            self.obs = WorkerObs(obs, rank, actor, self._send_obs_batch)
            m = self.obs.metrics
            self._c_sent = m.counter("mp.msgs_sent", rank=rank)
            self._c_recv = m.counter("mp.msgs_recv", rank=rank)
            self._c_connects = m.counter("mp.connects", rank=rank)
            self._c_lookups = m.counter("mp.lookups", rank=rank)
            self._c_retries = m.counter("mp.connect_retries", rank=rank)
            self._h_scan = m.histogram("mp.recvlist_scan",
                                       bounds=POW2_BUCKETS, rank=rank)
            self._g_qdepth = m.gauge("mp.queue_depth", rank=rank)
            self._g_links = m.gauge("mp.live_links", rank=rank)
            self._g_outbox = m.gauge("mp.outbox_len", rank=rank)
            self._g_chunk = m.gauge("mp.chunk_bytes", rank=rank)
            self._g_xfer = m.gauge("mp.transfer_nbytes", rank=rank)
            self._c_ckpts = m.counter("recovery.checkpoints", rank=rank)
            self._c_dups = m.counter("recovery.dups_dropped", rank=rank)
            self._c_replayed = m.counter("recovery.replayed_msgs",
                                         rank=rank)

        # listener for incoming peer connections
        self.listener = socket.create_server(("127.0.0.1", 0),
                                             backlog=_BACKLOG)
        self.addr = self.listener.getsockname()
        threading.Thread(target=self._accept_loop, daemon=True).start()

        # registry control connection
        self.ctl = socket.create_connection(registry_addr,
                                            timeout=_CONNECT_TIMEOUT)
        self.ctl.settimeout(None)
        self._ctl_replies: queue.Queue = queue.Queue()
        kind = "register_init" if initializing else "register"
        t_reg = time.time()
        self._ctl_send((kind, rank, self.addr))
        threading.Thread(target=self._ctl_loop, daemon=True).start()
        reg = self._await_ctl("registered")
        if self.obs is not None and len(reg) >= 2:
            # the registry echoed its clock: one midpoint-of-RTT sample
            # of the reference timeline (see repro.obs.clock)
            self.obs.clock.observe("registry", t_reg, reg[1], time.time())
        if rec_cfg is not None:
            threading.Thread(target=self._hb_loop, daemon=True).start()
        if self.obs is not None and obs.flush_seconds > 0:
            threading.Thread(target=self._obs_flush_loop,
                             daemon=True).start()

        # out-of-process directory: lookups consult the shard daemons
        # (replica walk / entry rotation over real sockets) and fall
        # back to the registry's authoritative ("lookup",) answer only
        # once the ladder is spent
        self.dir_client: MPDirectoryClient | None = None
        if dir_cfg is not None:
            on_count = None
            if self.obs is not None:
                counters = {
                    key: self.obs.metrics.counter(f"mp.{key}", rank=rank)
                    for key in ("dir_lookups", "dir_failovers",
                                "dir_unknown", "dir_fallbacks")}
                on_count = lambda key, n: counters[key].inc(n)
            self.dir_client = MPDirectoryClient(
                dir_cfg, salt=rank, fallback=self._scheduler_lookup,
                refresh=self._fetch_membership, on_count=on_count)

    def _ctl_send(self, frame: tuple) -> None:
        """Write one frame on the ctl socket (heartbeat-safe)."""
        with self._ctl_wlock:
            send_frame(self.ctl, frame)

    def _hb_loop(self) -> None:
        """Liveness beacon: one ``("hb", rank, ts)`` per cadence tick.

        One-way (no reply lands in ``_ctl_replies``), so it coexists
        with RPCs; the write lock keeps frames from interleaving.
        """
        while True:
            time.sleep(self.rec.heartbeat_every)
            try:
                self._ctl_send(("hb", self.rank, time.time()))
            except OSError:
                return  # registry gone (teardown) or we are migrating out

    def _obs_flush_loop(self) -> None:
        """Live metric streaming (``ObsConfig.flush_seconds > 0``): every
        period, ship whatever events buffered plus a *live* (non-final)
        metrics snapshot. The collector routes live snapshots into its
        ``live_view`` — ``repro obs watch`` tails them during a run.

        Safe alongside the protocol thread: the event buffer hand-off is
        a GIL-atomic list swap, metric reads are racy-but-benign levels,
        and ``_ctl_wlock`` keeps ctl frames from interleaving.
        """
        period = self.obs.config.flush_seconds
        while True:
            time.sleep(period)
            self.obs.flush(live=True)

    # -- observability -----------------------------------------------------
    def _send_obs_batch(self, batch: tuple) -> None:
        # recorded and flushed from the thread running the program; the
        # ctl write lock orders them against heartbeats
        self._ctl_send(batch)

    def _finalize_obs(self) -> None:
        """Fold wire accounting into the metrics and ship everything."""
        if self.obs is None:
            return
        total = FrameStats()
        for s in self._link_stats:
            total.add(s)
        m = self.obs.metrics
        for field, value in total.as_dict().items():
            name = ("mp.link_flushes" if field == "flushes"
                    else f"mp.{field}")
            m.counter(name, rank=self.rank).inc(value)
        self.obs.flush(final=True)

    def _make_link(self, sock: socket.socket, peer_rank: int) -> _PeerLink:
        stats = FrameStats() if self.obs is not None else None
        if stats is not None:
            self._link_stats.append(stats)
        return _PeerLink(sock, peer_rank, self.inbox, self.fastpath,
                         stats=stats)

    def _flush_links(self) -> None:
        """Push every link's staged frames out before blocking."""
        for link in self.links.values():
            if link.open:
                link.flush()

    # -- socket plumbing ---------------------------------------------------
    def _accept_loop(self) -> None:
        while True:
            try:
                conn, _ = self.listener.accept()
            except OSError:
                return  # listener closed (migration)
            try:
                hello = recv_frame(conn)
            except (FrameClosed, OSError):
                continue
            if hello[0] == "hello":
                # the application-level conn_ack of Fig. 3: TCP connect
                # success alone is NOT establishment (a connect can land in
                # the backlog of a migrating process's dying listener)
                if self.migrating:
                    conn.close()  # reject: requester will consult registry
                    continue
                peer_rank = hello[1]
                # recovery handshake: a cursor-bearing hello carries the
                # peer's receive cursor for us; the ack answers with
                # ours (None when recovery is off). The cursor read
                # races the protocol thread only toward a *smaller*
                # value — replay past it is dedup'd, never lost. With
                # obs on, the ack also echoes our clock so the dialer
                # gets a per-peer offset sample (repro.obs.clock).
                cursor = (self._rx_seq.get(peer_rank, 0)
                          if self.rec is not None and len(hello) >= 3
                          else None)
                if self.obs is not None:
                    ack = ("hello_ack", self.rank, cursor, time.time())
                elif cursor is not None:
                    ack = ("hello_ack", self.rank, cursor)
                else:
                    ack = ("hello_ack", self.rank)
                try:
                    send_frame(conn, ack)
                except OSError:
                    continue
                link = self._make_link(conn, peer_rank)
                if len(hello) >= 3:
                    link.replay_from = hello[2]
                self.inbox.put(("new_link", peer_rank, link))
            elif hello[0] == "replay_req":
                # a restored peer asking us to reconnect and replay our
                # retained outbox to it (one-shot; the connection itself
                # carries nothing further). Keeps connection initiation
                # sender-driven: the nudged side dials through the normal
                # _connect handshake, so no dual-initiation link races.
                self.inbox.put(("replay_nudge", hello[1], None))
                conn.close()
            elif hello[0] == "state_transfer":
                # the migrating process's transfer connection; its frames
                # (recvlist, state/state_chunk) flow into the inbox like
                # peer frames
                self._make_link(conn, hello[1])
            else:
                conn.close()

    def _ctl_loop(self) -> None:
        try:
            while True:
                frame = recv_frame(self.ctl)
                if frame[0] == "migrate":
                    self.inbox.put(("ctl", None, frame))
                else:
                    self._ctl_replies.put(frame)
        except (FrameClosed, OSError):
            return
        finally:
            # registry teardown: releases a parked (finished) worker
            self._ctl_closed.set()

    def _await_ctl(self, kind: str) -> tuple:
        frame = self._ctl_replies.get(timeout=_CONNECT_TIMEOUT)
        assert frame[0] == kind, f"expected {kind}, got {frame!r}"
        return frame

    def _rpc(self, request: tuple, reply_kind: str) -> tuple:
        self._ctl_send(request)
        return self._await_ctl(reply_kind)

    def _scheduler_lookup(self, dest: int) -> tuple:
        """The directory client's last-resort rung: ask the scheduler."""
        _, _, status, addr = self._rpc(("lookup", dest), "location")
        return status, addr

    def _fetch_membership(self) -> DaemonClientConfig | None:
        """Pull the current shard membership (post-fallback refresh)."""
        frame = self._rpc(("dir_membership",), "dir_membership")
        return (DaemonClientConfig(**frame[1])
                if frame[1] is not None else None)

    def _lookup(self, dest: int) -> tuple:
        """Resolve *dest* — shard daemons first when configured, the
        registry otherwise. Returns ``(status, addr)``."""
        if self.dir_client is not None:
            return self.dir_client.lookup(dest)
        return self._scheduler_lookup(dest)

    # -- connection management ----------------------------------------------
    def _connect(self, dest: int) -> _PeerLink:
        addr = self.pl.get(dest)
        obs = self.obs
        t_start = time.time() if obs is not None else 0.0
        attempts = 0
        # recovery runs wait out supervisor backoff + replacement spawn;
        # without recovery a dead peer is dead and the short budget holds
        rounds = 60 if self.rec is None else 600
        for _ in range(rounds):
            if addr is not None:
                attempts += 1
                sock = None
                try:
                    sock = socket.create_connection(
                        tuple(addr), timeout=_CONNECT_TIMEOUT)
                    hello = (("hello", self.rank, self._rx_seq.get(dest, 0))
                             if self.rec is not None
                             else ("hello", self.rank))
                    t_hello = time.time()
                    send_frame(sock, hello)
                    # wait for the application-level acknowledgement: a
                    # migrating process never answers (its listener is
                    # closed or the accept loop is gone), so the connect
                    # attempt fails here instead of losing messages into a
                    # half-dead backlog connection
                    sock.settimeout(2.0)
                    ack = recv_frame(sock)
                    t_ack = time.time()
                    if ack[0] != "hello_ack":
                        raise OSError(f"bad handshake {ack!r}")
                    sock.settimeout(None)
                    link = self._make_link(sock, dest)
                    self.links[dest] = link
                    if len(ack) >= 3 and ack[2] is not None:
                        link.replay_from = ack[2]
                        self._replay_outbox(dest, link)
                    if obs is not None and len(ack) >= 4:
                        obs.clock.observe(f"p{dest}", t_hello, ack[3],
                                          t_ack)
                    if obs is not None:
                        self._c_connects.inc()
                        self._c_retries.inc(attempts - 1)
                        obs.event("connect", dest=dest, attempts=attempts,
                                  seconds=time.time() - t_start)
                    return link
                except (OSError, FrameClosed):
                    if sock is not None:
                        try:
                            sock.close()
                        except OSError:
                            pass
                    # refused / unacked / stale address: consult the
                    # directory (shard daemons, or the registry)
            status, new_addr = self._lookup(dest)
            log.debug("rank %d: lookup(%d) -> %s %s",
                      self.rank, dest, status, new_addr)
            if obs is not None:
                self._c_lookups.inc()
                obs.event("lookup", dest=dest, status=status)
            if status == "terminated":
                raise RuntimeError(f"rank {dest} has terminated")
            if new_addr is None or tuple(new_addr) == addr:
                time.sleep(0.05)  # still starting/migrating; retry shortly
            if new_addr is not None:
                addr = tuple(new_addr)
                self.pl[dest] = addr
        raise RuntimeError(f"could not connect to rank {dest}")

    # -- recovery: outbox replay and receive-side dedup ---------------------
    def _data_frame(self, dest: int, tag: int, body: Any,
                    seq: int) -> tuple:
        return ("data", self.rank, tag, body, seq,
                self._durable_rx.get(dest, 0))

    def _replay_outbox(self, dest: int, link: _PeerLink) -> None:
        """Resend retained messages past the peer's advertised cursor.

        Runs on link adoption (either direction of establishment). Until
        a restored incarnation has loaded its comm state the replay is
        parked — replaying from an empty outbox would silently skip the
        pre-checkpoint suffix the peer is missing.
        """
        if link.replay_from is None or self.rec is None:
            return
        if not self._comm_ready:
            self._replay_pending.append(link)
            return
        replayed = 0
        for seq, tag, body in self._outbox.get(dest, []):
            if seq > link.replay_from:
                link.stage(self._data_frame(dest, tag, body, seq))
                replayed += 1
        link.replay_from = None  # replay once per link
        if replayed and self.obs is not None:
            self._c_replayed.inc(replayed)
            self.obs.event("retry", what="outbox_replay", dest=dest,
                           count=replayed)

    def _restore_comm(self, comm: dict) -> None:
        """Adopt a shipped communication-state epoch (migration arrival
        or checkpoint restore), then run any parked replays."""
        self._rx_seq = {int(k): int(v)
                        for k, v in (comm.get("rx") or {}).items()}
        self._tx_seq = {int(k): int(v)
                        for k, v in (comm.get("tx") or {}).items()}
        self._durable_rx = {int(k): int(v)
                            for k, v in (comm.get("durable_rx")
                                         or {}).items()}
        self._outbox = {int(k): [tuple(e) for e in v]
                        for k, v in (comm.get("outbox") or {}).items()}
        self._ckpt_version = int(comm.get("version", 0))
        self._comm_ready = True
        pending, self._replay_pending = self._replay_pending, []
        for link in pending:
            if link.open and self.links.get(link.rank) is link:
                self._replay_outbox(link.rank, link)

    def _request_replays(self) -> None:
        """Nudge every peer to reconnect and replay toward us.

        Replay is sender-driven (the retained outbox lives with the
        sender, and single-initiator connects avoid link races), so a
        sender that is idle — blocked receiving elsewhere, or finished
        and parked — would never notice our restored incarnation exists.
        The one-shot ``replay_req`` closes that gap; peers holding
        nothing for us ignore it. Best-effort by design: an unreachable
        peer is either dead (its own recovery will nudge us back) or
        actively sending (its organic reconnect replays anyway).
        """
        for peer in range(self.nranks):
            if peer == self.rank:
                continue
            addr = self.pl.get(peer)
            if addr is None:
                try:
                    _status, addr = self._lookup(peer)
                except (RuntimeError, OSError, FrameClosed):
                    continue
            if addr is None:
                continue
            try:
                with socket.create_connection(
                        tuple(addr), timeout=_CONNECT_TIMEOUT) as conn:
                    send_frame(conn, ("replay_req", self.rank))
            except (OSError, FrameClosed):
                continue

    def _park_until_teardown(self) -> None:
        """Outlive our own result so retained messages stay replayable.

        A finished sender's outbox is the only copy of messages a
        crashed receiver may not have durably received; exiting would
        destroy it. So a recovery-enabled worker keeps its accept loop
        reachable and its inbox draining — adopting links, answering
        replay nudges, flushing staged replays — until the registry
        closes the ctl socket at cluster teardown.
        """
        while not self._ctl_closed.is_set():
            try:
                item = self.inbox.get(timeout=0.2)
            except queue.Empty:
                self._flush_links()
                continue
            try:
                self._dispatch(item)
            except (RuntimeError, ValueError):
                log.exception("rank %d: dispatch while parked failed",
                              self.rank)
            self._flush_links()

    def _comm_epoch(self) -> dict:
        """The communication state that must travel with this rank."""
        return {"rx": dict(self._rx_seq), "tx": dict(self._tx_seq),
                "durable_rx": dict(self._durable_rx),
                "outbox": {d: list(v) for d, v in self._outbox.items()},
                "version": self._ckpt_version}

    def _accept_data(self, src: int, seq: int | None,
                     peer_durable: int | None) -> bool:
        """Receive-side sequencing: True if the frame is new.

        Drops anything at or below the cursor (a replay or a restarted
        sender's deterministic re-execution); enforces contiguity above
        it — a gap means the exactly-once invariant broke upstream, and
        silently reordering would corrupt the program, so fail loudly.
        """
        if seq is None or self.rec is None:
            return True
        if peer_durable is not None and \
                peer_durable > self._peer_durable.get(src, 0):
            # the sender checkpointed through peer_durable: messages we
            # retain for it up to that cursor can never be asked for again
            self._peer_durable[src] = peer_durable
            box = self._outbox.get(src)
            if box:
                self._outbox[src] = [e for e in box if e[0] > peer_durable]
        rx = self._rx_seq.get(src, 0)
        if seq <= rx:
            if self.obs is not None:
                self._c_dups.inc()
            return False
        if seq != rx + 1:
            raise RuntimeError(
                f"rank {self.rank}: data gap from {src}: "
                f"got seq {seq} after {rx}")
        self._rx_seq[src] = seq
        return True

    # -- inbox dispatch ----------------------------------------------------
    def _dispatch(self, item: tuple, drain_waiting: set | None = None) -> None:
        kind, peer, payload = item
        if kind == "new_link":
            old = self.links.get(peer)
            self.links[peer] = payload
            if old is not None and old.open:
                old.close()
            if drain_waiting is not None:
                payload.send(("peer_migrating", self.rank))
                payload.close()
                drain_waiting.add(peer)
            else:
                self._replay_outbox(peer, payload)
        elif kind == "replay_nudge":
            # a restored peer cannot be dialed into (replay is
            # sender-driven); it asks us to re-establish instead. Only
            # worth a connect when we retain messages it may be missing.
            link = self.links.get(peer)
            if (self.rec is not None and self._outbox.get(peer)
                    and (link is None or not link.open)):
                try:
                    self._connect(peer)
                except (RuntimeError, OSError):
                    log.warning("rank %d: replay reconnect to %d failed",
                                self.rank, peer)
        elif kind == "peer_closed":
            link = self.links.get(peer)
            if link is not None and (payload is None or link is payload):
                link.open = False
                # the peer only shut its *write* side; frames staged on
                # this link may still traverse it — push them out rather
                # than abandon them in the batcher (flush eats OSError)
                link.flush()
                if drain_waiting is not None and peer in drain_waiting:
                    drain_waiting.discard(peer)
                    if self.obs is not None:
                        self.obs.event("drain_peer", peer=peer,
                                       last="closed", rank=self.rank,
                                       **self._tctx("drain"))
        elif kind == "ctl":
            if payload[0] == "migrate":
                self.migrate_requested = payload[1]
                if len(payload) >= 3 and payload[2] is not None:
                    self.trace_id = payload[2]
        elif kind == "peer":
            fkind = payload[0]
            if fkind == "data":
                if len(payload) == 4:
                    _, src, tag, body = payload
                    seq = peer_durable = None
                else:
                    _, src, tag, body, seq, peer_durable = payload
                if self._accept_data(src, seq, peer_durable):
                    self.recvlist.append(_StoredMessage(src, tag, body))
            elif fkind == "peer_migrating":
                link = self.links.pop(peer, None)
                if link is not None:
                    if drain_waiting is None:
                        link.send(("eom", self.rank))
                    link.close()
                if drain_waiting is not None and peer in drain_waiting:
                    drain_waiting.discard(peer)
                    if self.obs is not None:
                        self.obs.event("drain_peer", peer=peer,
                                       last="peer_migrating", rank=self.rank,
                                       **self._tctx("drain"))
            elif fkind == "eom":
                link = self.links.pop(peer, None)
                if link is not None:
                    link.close()
                if drain_waiting is not None and peer in drain_waiting:
                    drain_waiting.discard(peer)
                    if self.obs is not None:
                        self.obs.event("drain_peer", peer=peer,
                                       last="eom", rank=self.rank,
                                       **self._tctx("drain"))
            elif fkind == "ack":
                # explicit durable-rx ack (the checkpoint tick): the peer
                # has durably received our messages through *cursor*, so
                # the retained suffix up to it can never be replayed —
                # prune. This is what bounds outbox growth for flows the
                # data-frame piggyback never covers (pure producers).
                _, src, cursor = payload
                if self.rec is not None and \
                        cursor > self._peer_durable.get(src, 0):
                    self._peer_durable[src] = cursor
                    box = self._outbox.get(src)
                    if box:
                        self._outbox[src] = [e for e in box
                                             if e[0] > cursor]
            else:
                raise ValueError(f"bad peer frame {payload!r}")
        else:  # pragma: no cover
            raise ValueError(f"bad inbox item {item!r}")

    # -- the API operations ---------------------------------------------------
    def send(self, dest: int, body: Any, tag: int = 0) -> None:
        if self.rec is None:
            frame = ("data", self.rank, tag, body)
        else:
            seq = self._tx_seq.get(dest, 0) + 1
            self._tx_seq[dest] = seq
            box = self._outbox.setdefault(dest, [])
            # a restored rank re-executes sends it already retained: the
            # regenerated message is byte-equal by determinism, so the
            # outbox keeps the original entry
            if not box or seq > box[-1][0]:
                box.append((seq, tag, body))
            frame = self._data_frame(dest, tag, body, seq)
        for attempt in range(3):
            link = self.links.get(dest)
            if link is None or not link.open:
                link = self._connect(dest)
            try:
                link.stage(frame)
                break
            except OSError:
                # a crashed peer RSTs mid-write. Without recovery that
                # peer is gone for good — surface the error; with it,
                # reconnect (blocking on the replacement) and let the
                # handshake replay cover whatever the dead link ate.
                link.open = False
                if self.rec is None or attempt == 2:
                    raise
        if self.obs is not None:
            self._c_sent.inc()
            if self.obs.sample_message():
                self.obs.event("send", dest=dest, tag=tag)

    def recv(self, src: int | None, tag: int | None) -> _StoredMessage:
        while True:
            for i, m in enumerate(self.recvlist):
                if (src is None or m.src == src) and \
                        (tag is None or m.tag == tag):
                    if self.obs is not None:
                        self._c_recv.inc()
                        self._h_scan.record(i + 1)
                        if self.obs.sample_message():
                            self.obs.event("recv", src=m.src, tag=m.tag)
                    return self.recvlist.pop(i)
            try:
                item = self.inbox.get_nowait()
            except queue.Empty:
                # about to block on the network: staged outbound frames
                # must leave first, or two ranks could deadlock waiting
                # on each other's batcher
                self._flush_links()
                if self.obs is not None:
                    self._update_gauges()
                item = self.inbox.get()
            self._dispatch(item)

    def poll_migration(self, state: dict) -> None:
        # a poll point is a yield point: let staged traffic out
        self._flush_links()
        # collect any pending control without blocking
        while True:
            try:
                item = self.inbox.get_nowait()
            except queue.Empty:
                break
            self._dispatch(item)
        if self.obs is not None:
            self._update_gauges()
        if self.rec is not None:
            self._polls += 1
            if self._polls % max(1, self.rec.checkpoint_every) == 0:
                self._checkpoint(state)
        if self.migrate_requested is not None:
            self._migrate(state)

    def _update_gauges(self) -> None:
        """Steady-state levels, refreshed at poll/recv points."""
        self._g_qdepth.set(self.inbox.qsize() + len(self.recvlist))
        self._g_links.set(sum(1 for l in self.links.values() if l.open))
        self._g_outbox.set(sum(len(v) for v in self._outbox.values()))

    # -- checkpointing (recovery runs) --------------------------------------
    def _checkpoint(self, state: dict) -> None:
        """Persist a restart point: program state + undelivered recvlist
        + the communication-state epoch, as one wrapper blob.

        A poll point is message-consistent *for this rank*: everything
        delivered is in ``state``/``recvlist``, everything sent is in the
        outbox. Recovery restores the rank alone — no global snapshot
        line — and the sequence cursors reconcile the channels, in the
        style of sender-retained message logging.
        """
        self._ckpt_version += 1
        wrapper = {
            _CKPT_KEY: 1,
            "state": state,
            "recvlist": [(m.src, m.tag, m.body) for m in self.recvlist],
            **self._comm_epoch(),
            "version": self._ckpt_version,
        }
        if self._ckpt_store.delta:
            self._ckpt_store.save_parts(self.rank, self._ckpt_version,
                                        encode_parts(wrapper, self.arch))
        else:
            blob = encode(wrapper, self.arch)
            self._ckpt_store.save_blob(self.rank, self._ckpt_version, blob)
        # the checkpoint is durable: our receive cursors are now what a
        # replacement of us would advertise — piggyback them so peers
        # prune their outboxes toward us
        self._durable_rx = dict(self._rx_seq)
        if self.obs is not None:
            self._c_ckpts.inc()
        self._ack_tick()

    def _ack_tick(self) -> None:
        """Tell senders their messages are durably received.

        The piggyback on data frames only reaches peers we *send to*; in
        a one-directional flow the producer never hears its consumer's
        durable cursor, so its outbox grows until this explicit ack
        lands. Fired right after each checkpoint, only for cursors that
        advanced since the last tick — a quiescent channel costs no
        frames.
        """
        staged = False
        for src, cursor in self._durable_rx.items():
            if cursor <= self._acked_durable.get(src, 0):
                continue
            link = self.links.get(src)
            if link is None or not link.open:
                continue
            try:
                link.stage(("ack", self.rank, cursor))
            except OSError:
                link.open = False
                continue
            self._acked_durable[src] = cursor
            staged = True
        if staged:
            self._flush_links()

    # -- migration (Fig. 5) -------------------------------------------------
    def _span(self, phase: str, **fields):
        """A migration-phase span, or None with observability off."""
        return (self.obs.span(phase, **fields)
                if self.obs is not None else None)

    def _tctx(self, parent: str | None = None) -> dict:
        """Trace-context fields for an event/span of the current
        migration: ``{}`` until a trace id is known, so pre-trace
        artifacts keep their exact shape."""
        tid = self.trace_id
        if tid is None:
            return {}
        return ({"trace_id": tid} if parent is None
                else {"trace_id": tid, "parent": parent})

    def _migrate(self, state: dict) -> None:
        obs = self.obs
        tid = self.trace_id
        freeze = self._span("freeze", **self._tctx())
        self.migrating = True  # accept loop stops acking from here on
        log.debug("rank %d: migrate() starting", self.rank)
        _, new_addr = self._rpc(("migration_start", self.rank),
                                "new_process")
        if freeze is not None:
            freeze.close()
        # reject further connections: close the listener. The rejection
        # window stays open until this process exits — its span is
        # closed (and the window measured) just before _Migrated.
        reject = self._span("reject", **self._tctx("freeze"))
        self.listener.close()
        # coordinate every connected peer
        drain = self._span("drain", **self._tctx("reject"))
        waiting: set[int] = set()
        for rank, link in list(self.links.items()):
            if link.open:
                link.send(("peer_migrating", self.rank))
                link.close()
                waiting.add(rank)
        npeers = len(waiting)
        log.debug("rank %d: draining, waiting=%s", self.rank, waiting)
        while waiting:
            self._dispatch(self.inbox.get(timeout=_CONNECT_TIMEOUT),
                           drain_waiting=waiting)
        # Quiescence sweep: a connection acked just before the migration
        # flag went up may still deliver its hello and first data; give
        # such in-flight establishments a grace window, coordinating any
        # that appear (the analogue of the simulator's pending-grant
        # accounting, where grants are tracked exactly).
        deadline = time.time() + 0.25
        while time.time() < deadline or waiting:
            try:
                item = self.inbox.get(timeout=0.05)
            except queue.Empty:
                if not waiting:
                    break
                continue
            self._dispatch(item, drain_waiting=waiting)
        if drain is not None:
            drain.close(peers=npeers)
        log.debug("rank %d: drain complete; transferring to %s",
                  self.rank, new_addr)
        # transfer the received-message-list and the machine-independent
        # execution/memory state
        transfer = self._span("transfer", **self._tctx("reject"))
        ctrl_stats: dict = {}
        parts = None
        list_a = [(m.src, m.tag, m.body) for m in self.recvlist]
        if self.rec is not None and self.fastpath \
                and self._ckpt_store.delta:
            # delta store on: the pre-departure encode doubles as the
            # rank's final durable checkpoint — one encode and one hash
            # pass serve both, and the wrapper (state + recvlist + comm
            # epoch, exactly what recover_rank ships) goes on the wire,
            # so ListA travels inside it
            self._ckpt_version += 1
            wrapper = {
                _CKPT_KEY: 1,
                "state": state,
                "recvlist": list_a,
                **self._comm_epoch(),
                "version": self._ckpt_version,
            }
            parts = encode_parts(wrapper, self.arch)
            self._ckpt_store.save_parts(self.rank, self._ckpt_version,
                                        parts)
            list_a = []
        elif self.rec is not None:
            # the communication-state epoch migrates with the rank: the
            # new incarnation must keep the cursors or peers' replays
            # would double-deliver past a reset receive counter
            state = {**state, _COMM_KEY: self._comm_epoch()}
        xfer = socket.create_connection(tuple(new_addr),
                                        timeout=_CONNECT_TIMEOUT)
        nchunks = 0
        if self.fastpath:
            # chunked stream: the destination starts absorbing while we
            # are still encoding; small leading frames (handshake,
            # recvlist) coalesce with the first chunk into one sendmsg
            batch = FrameBatcher(xfer)
            # the trace id rides every transfer frame: the destination
            # stitches its restore/commit spans under the same trace
            # even when it was spawned without one (recovery tooling,
            # external inits)
            batch.add(("state_transfer", self.rank, tid))
            batch.add(("recvlist", list_a, tid))
            sizer = self.chunk_bytes
            controller = None
            if isinstance(sizer, AdaptiveChunkPolicy):
                controller = ChunkController(sizer, budget=self.budget)
                sizer = controller
            if parts is None:
                source = ChunkSource(state, self.arch, sizer)
            else:
                source = ChunkSource(arch=self.arch, chunk_bytes=sizer,
                                     parts=parts)
            while not source.exhausted:
                c = source.next_chunk()
                data = b"".join(c.parts)
                if controller is None:
                    batch.add(("state_chunk", c.seq, data, c.last,
                               c.total_nbytes, tid))
                else:
                    # adaptive: flush per chunk and feed the wall-clock
                    # hand-off time back — a full kernel buffer (slow
                    # reader or slow wire) blocks the flush, reads as
                    # high latency and shrinks the next chunk
                    t0 = time.perf_counter()
                    batch.add(("state_chunk", c.seq, data, c.last,
                               c.total_nbytes, tid))
                    batch.flush()
                    controller.observe(len(data),
                                       time.perf_counter() - t0)
                    if obs is not None:
                        self._g_chunk.set(controller.size)
                nchunks += 1
                if obs is not None:
                    # live per-window progress: with overlapping gangs
                    # this is how a paced-but-contended transfer is told
                    # apart from a stuck one in the live view
                    self._g_xfer.set(source.sent_nbytes)
                    obs.event("state_chunk", seq=c.seq, nbytes=len(data),
                              last=c.last, rank=self.rank,
                              **self._tctx("transfer"))
            batch.flush()
            if controller is not None:
                ctrl_stats = controller.stats()
                # give the gang its slot back the moment the last chunk
                # is on the wire — the restore side no longer contends
                controller.close()
        else:
            send_frame(xfer, ("state_transfer", self.rank, tid))
            send_frame(xfer, ("recvlist",
                              [(m.src, m.tag, m.body)
                               for m in self.recvlist], tid))
            blob = encode(state, self.arch, fastpath=False)
            send_frame(xfer, ("state", blob, tid))
            nchunks = 1
            if obs is not None:
                obs.event("state_chunk", seq=0, nbytes=len(blob),
                          last=True, rank=self.rank,
                          **self._tctx("transfer"))
        xfer.close()
        if transfer is not None:
            transfer.close(chunks=nchunks, **ctrl_stats)
        if reject is not None:
            reject.close()
        log.debug("rank %d: state shipped; exiting source process",
                  self.rank)
        self._finalize_obs()
        raise _Migrated()


class _Migrated(BaseException):
    """Unwinds the worker after its state has been shipped."""


# ---------------------------------------------------------------------------
# process entry points
# ---------------------------------------------------------------------------

def _worker_main(rank: int, nranks: int, registry_addr: tuple,
                 program: Callable, pl: dict, arch: Architecture,
                 fastpath: bool = True,
                 obs: ObsConfig | None = None,
                 state: dict | None = None,
                 dir_cfg: DaemonClientConfig | None = None,
                 rec_cfg: WorkerRecoveryConfig | None = None,
                 chunk_bytes=DEFAULT_CHUNK_BYTES,
                 budget: "_SharedBandwidthBudget | None" = None) -> None:
    _configure_logging()
    w = _Worker(rank, nranks, registry_addr, program, initializing=False,
                arch=arch, incarnation=0, fastpath=fastpath, obs=obs,
                dir_cfg=dir_cfg, rec_cfg=rec_cfg, chunk_bytes=chunk_bytes,
                budget=budget)
    w.pl = dict(pl)
    _run_program(w, dict(state) if state else {})


def _init_main(rank: int, nranks: int, registry_addr: tuple,
               program: Callable, arch: Architecture,
               incarnation: int, fastpath: bool = True,
               obs: ObsConfig | None = None,
               dir_cfg: DaemonClientConfig | None = None,
               rec_cfg: WorkerRecoveryConfig | None = None,
               chunk_bytes=DEFAULT_CHUNK_BYTES,
               trace_id: str | None = None,
               budget: "_SharedBandwidthBudget | None" = None) -> None:
    _configure_logging()
    w = _Worker(rank, nranks, registry_addr, program, initializing=True,
                arch=arch, incarnation=incarnation, fastpath=fastpath,
                obs=obs, dir_cfg=dir_cfg, rec_cfg=rec_cfg,
                chunk_bytes=chunk_bytes, trace_id=trace_id, budget=budget)
    # Fig. 7: accept connections from the start; wait for the transfer.
    # The state arrives either as one legacy ("state", blob) frame or as
    # an ordered run of ("state_chunk", seq, data, last, total) frames;
    # either may carry a trailing trace id, adopted when the launcher
    # did not already hand one down.
    # A recovery trace roots at the registry's ``recover`` span; a
    # migration's restore hangs under the source's ``transfer``.
    parent = ("recover" if trace_id and trace_id.startswith("rec-")
              else "transfer")
    restore = w._span("restore", **w._tctx(parent))
    recvlist_a = None
    state_blob = None
    chunks: list = []
    #: recovery runs park early data frames: their sequence numbers can
    #: only be judged once the restored receive cursors are in place
    deferred: list[tuple] = []
    while state_blob is None:
        item = w.inbox.get(timeout=_CONNECT_TIMEOUT)
        kind, peer, payload = item
        if kind == "peer" and payload[0] in ("recvlist", "state",
                                             "state_chunk") \
                and w.trace_id is None and payload[-1] is not None \
                and isinstance(payload[-1], str):
            w.trace_id = payload[-1]
        if kind == "peer" and payload[0] == "recvlist":
            recvlist_a = payload[1]
        elif kind == "peer" and payload[0] == "state":
            state_blob = payload[1]
        elif kind == "peer" and payload[0] == "state_chunk":
            seq, data, last, total = payload[1:5]
            if seq != len(chunks):
                raise ValueError(
                    f"state chunk {seq} out of order (expected "
                    f"{len(chunks)}); transfer channel is not FIFO?")
            chunks.append(data)
            if last:
                state_blob = b"".join(chunks)
                if len(state_blob) != total:
                    raise ValueError(
                        f"state stream truncated: got {len(state_blob)} "
                        f"of {total} bytes")
        elif rec_cfg is not None and kind == "peer" and payload[0] == "data":
            deferred.append(item)
        elif rec_cfg is not None and kind == "replay_nudge":
            # our outbox only exists after the restore below; a nudge
            # honoured now would find nothing to replay and be lost
            deferred.append(item)
        else:
            w._dispatch(item)
    state = decode(state_blob)
    ckpt_list: list = []
    if isinstance(state, dict) and state.get(_CKPT_KEY):
        # recovery: the "source" was a checkpoint wrapper, not a live
        # process — unwrap it into program state + retained recvlist +
        # communication epoch (Fig. 7 restore, fed from disk)
        wrapper = state
        state = wrapper["state"]
        ckpt_list = [_StoredMessage(*t) for t in wrapper["recvlist"]]
        w._restore_comm(wrapper)
    elif isinstance(state, dict) and _COMM_KEY in state:
        # live migration in a recovery-enabled run: the epoch rides in
        # the state dict under a reserved key
        w._restore_comm(state.pop(_COMM_KEY))
    # the retained (checkpoint) list precedes ListA, which precedes
    # anything that arrived on fresh connections — arrival order
    w.recvlist = (ckpt_list
                  + [_StoredMessage(*t) for t in recvlist_a]
                  + w.recvlist)
    for item in deferred:
        w._dispatch(item)
    if restore is not None:
        restore.close(nbytes=len(state_blob), chunks=len(chunks) or 1,
                      **(w._tctx(parent) if not restore.fields.get("trace_id")
                         else {}))
    log.debug("init rank %d: state restored (%d bytes)",
              rank, len(state_blob))
    commit = w._span("commit", **w._tctx("restore"))
    frame = w._rpc(("restore_complete", rank, w.addr), "pl_snapshot")
    w.pl = {r: tuple(a) for r, a in frame[1].items()}
    if commit is not None:
        commit.close()
    if rec_cfg is not None:
        # ask every peer to reconnect and replay: idle or finished
        # senders hold messages the dead incarnation never durably
        # received and would otherwise never dial the replacement
        w._request_replays()
    _run_program(w, state)


def _run_program(w: _Worker, state: dict) -> None:
    api = MPApi(w)
    try:
        result = w.program(api, state)
    except _Migrated:
        return
    if w.rec is None:
        for link in w.links.values():
            if link.open:
                try:
                    link.send(("eom", w.rank))
                except OSError:
                    pass
                link.close()
    else:
        # recovery runs: links stay open and the process parks below —
        # our outbox must remain replayable for a peer that crashes (or
        # is already restoring) after we finished
        w._flush_links()
    # final event/metric batch must precede the result frame: once every
    # rank has reported, the launcher may tear the registry down
    w._finalize_obs()
    w._ctl_send(("result", w.rank, result))
    w._ctl_send(("terminated", w.rank))
    if w.rec is not None:
        w._park_until_teardown()


# ---------------------------------------------------------------------------
# launcher
# ---------------------------------------------------------------------------

@dataclass
class _Member:
    """One spawned child process of the cluster.

    ``superseded`` marks an incarnation a newer process has replaced
    (migration or recovery): the supervisor must not resurrect it when
    its exit code lands."""

    rank: int
    proc: mp.Process
    role: str = "worker"  # "worker" | "init"
    superseded: bool = False


class MPCluster:
    """Launch and steer a multiprocess computation.

    Example::

        cluster = MPCluster(program, nranks=2)
        cluster.start()
        time.sleep(0.2)
        cluster.migrate(1)
        results = cluster.join()

    With ``recovery=RecoverySpec(...)`` (or ``recovery=True``) the run is
    crash-tolerant: ranks checkpoint at poll points, a supervisor thread
    restarts crashed ranks from their newest complete checkpoint through
    the migration path, and directory shard daemons persist a WAL.
    """

    def __init__(self, program: Callable, nranks: int,
                 arch: Architecture = NATIVE,
                 dest_arch: Architecture = NATIVE,
                 directory: "DirectorySpec | str | None" = None,
                 fastpath: bool = True,
                 obs: "ObsConfig | bool | None" = None,
                 init_states: "list[dict] | None" = None,
                 recovery: "RecoverySpec | bool | str | None" = None,
                 chunk_bytes=None,
                 migration_concurrency: int | None = None):
        _configure_logging()
        self.program = program
        self.nranks = nranks
        #: optional per-rank initial program state (index = rank)
        self.init_states = init_states
        self.arch = arch
        self.dest_arch = dest_arch
        #: zero-copy framing + chunked state transfer; False reproduces
        #: the original copy-per-frame wire path (A/B baseline)
        self.fastpath = fastpath
        #: observability: True / ObsConfig enables event collection and
        #: worker metrics, merged at the registry (see repro.obs)
        self.obs = ObsConfig.coerce(obs)
        #: fixed chunk size (int), ``"adaptive"``, or an AdaptiveChunkPolicy
        self.chunk_bytes = coerce_chunk_bytes(chunk_bytes)
        #: crash recovery: supervision + checkpoints + durable directory
        self.recovery = RecoverySpec.coerce(recovery)
        self._recovery_root: str | None = None
        self._recovery_tmp = False
        self._rec_cfg: WorkerRecoveryConfig | None = None
        dir_wal: str | None = None
        if self.recovery is not None:
            self._recovery_root = self.recovery.resolve_dir()
            self._recovery_tmp = self.recovery.dir is None
            self._rec_cfg = WorkerRecoveryConfig(
                dir=os.path.join(self._recovery_root, "ckpt"),
                checkpoint_every=self.recovery.checkpoint_every,
                heartbeat_every=self.recovery.heartbeat_every,
                delta_checkpoints=self.recovery.delta_checkpoints,
                delta_max_chain=self.recovery.delta_max_chain,
                delta_gc=self.recovery.delta_gc)
            spec = DirectorySpec.coerce(directory)
            if self.recovery.shard_wal and spec.distributed and spec.daemons:
                dir_wal = os.path.join(self._recovery_root, "dirwal")
        self.registry = _Registry(directory=directory, obs=self.obs,
                                  dir_wal=dir_wal)
        self.registry.expected_results = nranks
        self._procs: list[mp.Process] = []
        self._incarnation: dict[int, int] = {}
        self._ctx = mp.get_context("fork")
        self._members: list[_Member] = []
        self._mlock = threading.Lock()
        self.supervisor: Supervisor | None = None
        #: gang admission: how many migration windows may overlap
        #: (``None`` = unbounded, ``1`` reproduces the pre-gang
        #: serialized behavior exactly)
        self.migration_concurrency = migration_concurrency
        self.admission = GangAdmission(concurrency=migration_concurrency)
        self._adm_lock = threading.Lock()
        #: fork-shared fair-share ledger for concurrent adaptive
        #: transfers; fixed chunk sizes need no ledger (no AIMD signal
        #: to protect from sibling queue wait)
        self.budget = (_SharedBandwidthBudget(self._ctx)
                       if isinstance(self.chunk_bytes, AdaptiveChunkPolicy)
                       else None)
        self.registry.on_window_closed = self._commit_window
        self.registry.on_rank_terminated = self._cancel_window

    def _dir_cfg(self) -> DaemonClientConfig | None:
        """Shard-daemon membership to hand a process being spawned."""
        host = self.registry.daemon_host
        return host.client_config() if host is not None else None

    def _track(self, rank: int, proc: mp.Process, role: str) -> None:
        with self._mlock:
            self._members.append(_Member(rank, proc, role))

    def _supersede(self, rank: int) -> None:
        with self._mlock:
            for m in self._members:
                if m.rank == rank:
                    m.superseded = True

    def start(self) -> "MPCluster":
        dir_cfg = self._dir_cfg()
        for rank in range(self.nranks):
            state = self.init_states[rank] if self.init_states else None
            p = self._ctx.Process(
                target=_worker_main,
                args=(rank, self.nranks, self.registry.addr, self.program,
                      {}, self.arch, self.fastpath, self.obs, state,
                      dir_cfg, self._rec_cfg, self.chunk_bytes,
                      self.budget),
                daemon=True)
            p.start()
            self._procs.append(p)
            self._track(rank, p, "worker")
        # wait until every rank registered
        deadline = time.time() + _CONNECT_TIMEOUT
        while time.time() < deadline:
            with self.registry._lock:
                if len(self.registry.locations) == self.nranks:
                    break
            time.sleep(0.01)
        else:
            raise RuntimeError("workers failed to register")
        if self.recovery is not None:
            metrics = (self.registry.collector.metrics
                       if self.registry.collector is not None else None)
            self.supervisor = Supervisor(self, self.recovery,
                                         metrics=metrics).start()
        return self

    def migrate(self, rank: int) -> None:
        """Move *rank* into a brand-new OS process.

        Blocks until the request is admitted: any in-flight migration
        of the same rank must commit first (the registry must hold a
        live control connection to the current incarnation before it
        can signal it), and a ``migration_concurrency`` cap must have a
        free window. Use :meth:`migrate_many` to open overlapping
        windows without blocking on admission.
        """
        deadline = time.time() + _CONNECT_TIMEOUT
        while time.time() < deadline:
            with self.registry._lock:
                ready = (self.registry.status.get(rank) == "running"
                         and rank not in self.registry.init_addr)
            if ready:
                with self._adm_lock:
                    if self.admission.admissible(rank):
                        self.admission.request(rank, None)
                        break
            time.sleep(0.01)
        else:
            raise RuntimeError(f"rank {rank} is not in a migratable state")
        try:
            self._launch_migration(rank)
        except BaseException:
            self._close_window(rank)
            raise

    def migrate_many(self, ranks: "list[int]") -> dict[int, str]:
        """Request a gang of concurrent migrations; rank → verdict.

        Every request enters the shared :class:`GangAdmission` machine:
        ``admit`` windows are launched concurrently (this call returns
        once each admitted migration has been signalled — its window is
        open and overlapping with its siblings), ``queued`` requests
        dispatch automatically as windows close, ``coalesced`` means an
        earlier queued request for the same rank absorbed this one.
        Use :meth:`wait_migrations` to wait for the whole gang —
        including queued members — to commit.
        """
        with self._adm_lock:
            verdicts = {rank: self.admission.request(rank, None)
                        for rank in ranks}
        admitted = [r for r, v in verdicts.items() if v == ADMIT]
        threads = [threading.Thread(target=self._launch_admitted,
                                    args=(r,), daemon=True)
                   for r in admitted]
        for t in threads:
            t.start()
        for t in threads:
            t.join(_CONNECT_TIMEOUT)
        return verdicts

    def wait_migrations(self, timeout: float = 60.0) -> None:
        """Block until every requested migration window has closed.

        Settled means: no in-flight admission windows, an empty queue,
        no initialized process awaiting its transfer, and every rank
        either ``running`` or already ``terminated``.
        """
        deadline = time.time() + timeout
        while time.time() < deadline:
            with self._adm_lock:
                quiet = (not self.admission.inflight
                         and not self.admission.pending)
            if quiet:
                with self.registry._lock:
                    settled = (not self.registry.init_addr
                               and all(st in ("running", "terminated")
                                       for st in
                                       self.registry.status.values()))
                if settled:
                    return
            time.sleep(0.01)
        raise TimeoutError("gang migrations did not settle in time")

    def _launch_admitted(self, rank: int) -> None:
        """Open an admitted window; on launch failure close it so the
        queue keeps draining instead of deadlocking behind a ghost."""
        try:
            self._launch_migration(rank)
        except Exception:
            log.exception("rank %d: admitted migration failed to launch",
                          rank)
            self._close_window(rank)

    def _commit_window(self, rank: int) -> None:
        """``restore_complete`` observed: the destination is now the
        rank's running incarnation. Retire every older member (the
        migrated-out source exits 0 on its own; superseding it keeps
        the supervisor from ever resurrecting it), then free the
        admission slot."""
        with self._mlock:
            mine = [m for m in self._members if m.rank == rank]
            for m in mine[:-1]:
                m.superseded = True
        self._close_window(rank)

    def _close_window(self, rank: int) -> None:
        """A migration window closed (commit observed via
        ``restore_complete``, a failed launch, or a recovery that
        superseded it): free the admission slot and launch every queued
        request that became admissible, each on its own thread."""
        with self._adm_lock:
            admitted = self.admission.complete(rank)
        for r, _dest in admitted:
            threading.Thread(target=self._launch_admitted, args=(r,),
                             daemon=True).start()

    def _cancel_window(self, rank: int) -> None:
        """*rank* terminated: drop its queued request, close its window
        and dispatch whatever that unblocks."""
        with self._adm_lock:
            admitted = self.admission.cancel(rank)
        for r, _dest in admitted:
            threading.Thread(target=self._launch_admitted, args=(r,),
                             daemon=True).start()

    def _launch_migration(self, rank: int) -> None:
        """Open the (already admitted) migration window for *rank*:
        spawn the initialized process, wait for it to register, signal
        the source. The window stays open until the registry observes
        ``restore_complete`` and fires :meth:`_close_window`."""
        deadline = time.time() + _CONNECT_TIMEOUT
        while time.time() < deadline:
            with self.registry._lock:
                ready = (self.registry.status.get(rank) == "running"
                         and rank not in self.registry.init_addr)
            if ready:
                break
            time.sleep(0.01)
        else:
            raise RuntimeError(f"rank {rank} is not in a migratable state")
        inc = self._incarnation.get(rank, 0) + 1
        self._incarnation[rank] = inc
        # The source is NOT superseded yet: it keeps executing (and
        # stays crash-detectable by the supervisor) until the window
        # commits — _commit_window retires it at restore_complete. A
        # source that dies mid-window is therefore a plain rank crash,
        # recovered from its checkpoint with the interrupted window's
        # trace linked.
        # cluster-unique causal trace id: every span/frame of this
        # migration — source freeze..transfer, destination
        # restore/commit, the registry's window — stitches under it
        trace_id = f"mig-r{rank}.m{inc}-{uuid.uuid4().hex[:8]}"
        p = self._ctx.Process(
            target=_init_main,
            args=(rank, self.nranks, self.registry.addr, self.program,
                  self.dest_arch, inc, self.fastpath, self.obs,
                  self._dir_cfg(), self._rec_cfg, self.chunk_bytes,
                  trace_id, self.budget),
            daemon=True)
        p.start()
        self._procs.append(p)
        self._track(rank, p, "init")
        # wait for the initialized process to register, then signal
        deadline = time.time() + _CONNECT_TIMEOUT
        while time.time() < deadline:
            with self.registry._lock:
                if rank in self.registry.init_addr:
                    break
            time.sleep(0.01)
        else:
            raise RuntimeError("initialized process failed to register")
        self.registry.signal_migrate(rank, self.dest_arch.name, trace_id)

    # -- crash recovery ------------------------------------------------------
    def members(self) -> list[_Member]:
        """Snapshot of every spawned child (supervisor scan surface)."""
        with self._mlock:
            return list(self._members)

    def live_member(self, rank: int) -> _Member | None:
        """The member currently *executing* rank's program.

        While a migration window is open two members are live — the
        still-running source and the initialized destination waiting
        for the state transfer. Until ``restore_complete`` promotes
        it, the pending destination is skipped: crash injection
        (:meth:`kill_rank`) and the heartbeat scan both mean the
        incarnation that owns the program state."""
        with self.registry._lock:
            pending = rank in self.registry.init_addr
        with self._mlock:
            live = [m for m in self._members
                    if m.rank == rank and not m.superseded]
        if not live:
            return None
        if pending and len(live) >= 2:
            return live[-2]
        return live[-1]

    def rank_status(self, rank: int) -> str:
        with self.registry._lock:
            return self.registry.status.get(rank, "starting")

    def heartbeats(self) -> dict[int, float]:
        return dict(self.registry.heartbeats)

    def note_permanent_failure(self, key: tuple, reason: str) -> None:
        self.registry.fail_permanently(key, reason)

    def kill_rank(self, rank: int) -> int:
        """SIGKILL the live incarnation of *rank* (crash injection for
        tests and demos); returns the killed pid."""
        member = self.live_member(rank)
        if member is None or member.proc.pid is None:
            raise RuntimeError(f"rank {rank} has no live process")
        pid = member.proc.pid
        os.kill(pid, _signal.SIGKILL)
        return pid

    def checkpoint_store(self) -> CheckpointStore:
        """The run's durable checkpoint store (read-side: tests, CLI)."""
        if self._rec_cfg is None:
            raise RuntimeError(
                "recovery is off; construct MPCluster(recovery=True)")
        return CheckpointStore(self._rec_cfg.dir)

    def recovery_report(self) -> dict:
        """Supervisor restart/backoff/escalation summary."""
        if self.supervisor is None:
            raise RuntimeError(
                "recovery is off; construct MPCluster(recovery=True)")
        return self.supervisor.report()

    def recover_rank(self, rank: int) -> dict:
        """Restart a crashed *rank* from its newest complete checkpoint.

        This **is** the migration path (Fig. 7) with a disk blob where
        the live source would be: spawn an initialized replacement
        (accepting from the start), publish it as ``migrating`` so peer
        lookups redirect, ship the checkpoint wrapper over an ordinary
        ``state_transfer`` connection with an *empty* ListA (the
        retained receive-list lives inside the wrapper), and let
        ``restore_complete`` flip the record to ``running``. Peers find
        the replacement through the normal failed-connect → lookup
        ladder; the sequence-number replay/dedup protocol makes message
        delivery exactly-once across the crash.

        Normally called by the :class:`Supervisor`; callable directly
        for tests. Returns ``{rank, version, incarnation, seconds,
        nbytes}``.
        """
        if self._rec_cfg is None:
            raise RuntimeError(
                "recovery is off; construct MPCluster(recovery=True)")
        t0 = time.time()
        inc = self._incarnation.get(rank, 0) + 1
        # recovery gets its own causal trace, rooted at this span (the
        # "rec-" prefix tells the replacement to hang restore under
        # "recover" instead of a source's "transfer")
        trace_id = f"rec-r{rank}.m{inc}-{uuid.uuid4().hex[:8]}"
        # A crash *inside* a migration window interrupts that migration:
        # pop its bookkeeping (so the recovery's restore_complete isn't
        # measured against the dead window's start) and link its trace
        # on the recover root span — the cross-migration causality edge
        # obs_trace_links() exposes.
        interrupted = self.registry.interrupted_migration(rank)
        if interrupted is not None and self.budget is not None:
            # the dead source may have died holding a bandwidth-budget
            # slot (acquired when its transfer controller was built);
            # release is clamped at zero, so freeing one here at worst
            # under-counts a source that crashed before its transfer
            # phase ever opened
            self.budget.release()
        collector = self.registry.collector
        if collector is not None:
            extra = {"links": [interrupted]} if interrupted else {}
            collector.record("registry", "span_start",
                             phase="recover", rank=rank,
                             trace_id=trace_id, **extra)
        store = CheckpointStore(self._rec_cfg.dir)
        version = store.latest_complete_version(rank)
        if version is None:
            # crashed before its first durable checkpoint: restart from
            # the initial program state with an empty communication
            # epoch. Peers replay their full outboxes (nothing was ever
            # acknowledged durable) and the rank's re-executed sends
            # deduplicate at the receivers.
            init = (self.init_states[rank]
                    if self.init_states else None) or {}
            wrapper = {_CKPT_KEY: 1, "state": dict(init), "recvlist": [],
                       "rx": {}, "tx": {}, "durable_rx": {}, "outbox": {},
                       "version": 0}
            blob = encode(wrapper, self.dest_arch)
        else:
            blob = store.load_blob(rank, version)
        self.registry.begin_recovery(rank)
        self._supersede(rank)
        self._incarnation[rank] = inc
        p = self._ctx.Process(
            target=_init_main,
            args=(rank, self.nranks, self.registry.addr, self.program,
                  self.dest_arch, inc, self.fastpath, self.obs,
                  self._dir_cfg(), self._rec_cfg, self.chunk_bytes,
                  trace_id, self.budget),
            daemon=True)
        p.start()
        self._procs.append(p)
        self._track(rank, p, "init")
        deadline = time.time() + _CONNECT_TIMEOUT
        while time.time() < deadline:
            with self.registry._lock:
                addr = self.registry.init_addr.get(rank)
            if addr is not None:
                break
            time.sleep(0.01)
        else:
            raise RuntimeError(
                f"replacement for rank {rank} failed to register")
        self.registry.set_recovering(rank)
        # ship the checkpoint exactly as a migrating source ships live
        # state (same frames, same transfer connection)
        xfer = socket.create_connection(tuple(addr),
                                        timeout=_CONNECT_TIMEOUT)
        try:
            send_frame(xfer, ("state_transfer", -1, trace_id))
            send_frame(xfer, ("recvlist", [], trace_id))
            send_frame(xfer, ("state", blob, trace_id))
        finally:
            xfer.close()
        # wait for restore_complete to flip the record back to running
        deadline = time.time() + _CONNECT_TIMEOUT
        while time.time() < deadline:
            with self.registry._lock:
                committed = (self.registry.status.get(rank) == "running"
                             and rank not in self.registry.init_addr)
            if committed:
                break
            time.sleep(0.01)
        else:
            raise RuntimeError(f"rank {rank} recovery did not commit")
        self.registry.heartbeats[rank] = time.time()
        seconds = time.time() - t0
        if collector is not None:
            collector.record("registry", "span_end", phase="recover",
                             rank=rank, seconds=seconds,
                             trace_id=trace_id)
        log.info("rank %d recovered from checkpoint v%s in %.3fs "
                 "(incarnation %d)", rank, version or 0, seconds, inc)
        return {"rank": rank, "version": version or 0, "incarnation": inc,
                "seconds": seconds, "nbytes": len(blob),
                "trace_id": trace_id, "interrupted": interrupted}

    def _cleanup_recovery_dir(self) -> None:
        if self._recovery_tmp and self._recovery_root is not None:
            shutil.rmtree(self._recovery_root, ignore_errors=True)
            self._recovery_root = None

    def join(self, timeout: float = 60.0) -> dict[int, Any]:
        """Wait for every rank's result; returns rank → program return.

        Raises ``RuntimeError`` when the supervisor escalated a child to
        permanent failure (restart budget exhausted)."""
        if not self.registry.done.wait(timeout):
            raise TimeoutError("cluster did not finish in time")
        with self.registry._lock:
            failures = dict(self.registry.permanent_failures)
        if failures:
            detail = "; ".join(f"{k[0]} {k[1]}: {v}"
                               for k, v in failures.items())
            self.terminate()
            raise RuntimeError(f"permanent failure: {detail}")
        if self.supervisor is not None:
            self.supervisor.stop()
        if self.recovery is not None:
            # parked workers exit when their ctl sockets close — the
            # registry must come down before their processes can join
            self.registry.close()
        for p in self._procs:
            p.join(timeout=5.0)
        if self.recovery is None:
            self.registry.close()
        self._cleanup_recovery_dir()
        return dict(self.registry.results)

    def directory_stats(self) -> dict[int, dict[str, int]] | None:
        """Per-directory-node lookup/forward/update counters.

        Logical (in-registry) shards: derived from the directory's
        metrics registry — the same counters ``metrics_snapshot()``
        exposes as ``dir.*`` — so the two views cannot drift. Daemon
        shards: each live daemon is polled over its own socket
        (unreachable daemons report ``None``).
        """
        host = self.registry.daemon_host
        if host is not None:
            return host.poll_stats()
        if self.registry.directory is None:
            return None
        with self.registry._lock:
            return self.registry.directory.stats()

    # -- shard-daemon control (daemons=True) --------------------------------
    def _daemon_host(self) -> DirectoryDaemonHost:
        host = self.registry.daemon_host
        if host is None:
            raise RuntimeError(
                "no shard daemons; construct MPCluster(directory="
                "DirectorySpec(backend='sharded', daemons=True))")
        return host

    def directory_kill(self, node_id: int) -> None:
        """SIGKILL one shard daemon (crash-stop; membership unchanged)."""
        self._daemon_host().kill(node_id)

    def directory_restart(self, node_id: int) -> None:
        """Respawn a killed shard at its old address and re-seed it."""
        self._daemon_host().restart(node_id)

    def directory_join(self):
        """Add a shard daemon, handing over records before the ring
        flips; returns the :class:`MembershipChange`."""
        return self._daemon_host().join()

    def directory_leave(self, node_id: int):
        """Remove a shard daemon after handing its records over."""
        return self._daemon_host().leave(node_id)

    def directory_live_shards(self) -> int | None:
        host = self.registry.daemon_host
        return host.live_count() if host is not None else None

    def migration_windows(self) -> list[dict]:
        """Registry-observed migration windows (always collected):
        ``{"rank", "t0", "seconds"}`` per migration, in commit order."""
        with self.registry._lock:
            return [dict(w) for w in self.registry.migration_windows]

    # -- observability read-out --------------------------------------------
    def _collector(self) -> RegistryCollector:
        if self.registry.collector is None:
            raise RuntimeError(
                "observability is off; construct MPCluster(obs=True)")
        return self.registry.collector

    def obs_events(self) -> list[dict]:
        """Merged, time-ordered event stream from every process."""
        return self._collector().events()

    def obs_traces(self) -> dict[str, list[dict]]:
        """Events grouped by migration/recovery ``trace_id``."""
        return self._collector().traces()

    def obs_trace_links(self) -> dict[str, list[str]]:
        """Cross-trace causality edges (``{trace_id: [linked ids]}``):
        a recovery triggered inside a migration window links the
        interrupted migration's trace on its ``recover`` root span."""
        return self._collector().trace_links()

    def budget_stats(self) -> dict | None:
        """Shared bandwidth-ledger counters (``None`` unless the run
        uses adaptive chunking): active/peak slots, total acquires and
        the pooled RTT floor the gang's ``auto`` budgets derive from."""
        return self.budget.stats() if self.budget is not None else None

    def obs_live(self) -> dict[str, dict]:
        """Latest live-streamed gauge levels per actor (requires
        ``ObsConfig(flush_seconds=...)`` — see ``repro obs watch``)."""
        return self._collector().live_view()

    def metrics_snapshot(self) -> list[dict]:
        """Cluster-wide metrics: every worker's final snapshot plus the
        registry's own (directory counters), merged."""
        return self._collector().metrics.snapshot()

    def write_obs_jsonl(self, path: str) -> int:
        """Write the merged JSONL artifact; returns the record count."""
        return self._collector().write_jsonl(path)

    def terminate(self) -> None:
        if self.supervisor is not None:
            self.supervisor.stop()
        for p in self._procs:
            if p.is_alive():
                p.terminate()
        self.registry.close()
        self._cleanup_recovery_dir()

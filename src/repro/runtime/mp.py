"""Multiprocess runtime: real process migration between OS processes.

The simulator validates the protocol design; this backend demonstrates it
*for real*: application ranks are separate OS processes communicating
over TCP sockets (FIFO, connection-oriented — the substrate of paper
Section 2.3), and a migration actually moves a running rank into a fresh
OS process:

* the registry (the paper's scheduler) spawns the initialized process,
  which listens and accepts connections from the start (Fig. 7 line 1);
* the migrating process stops accepting, sends ``peer_migrating`` as its
  last message on every connection, drains until each peer's
  ``end_of_message`` arrives (Fig. 5), ships its received-message-list
  and its **machine-independent state blob** (:mod:`repro.codec`) to the
  new process, and exits;
* peers discover the new location on demand: a failed/refused connect
  triggers a registry lookup — no broadcast, no forwarding, and the old
  process is gone (no residual dependency).

The paper's out-of-band disconnection signal is replaced by in-band
``peer_migrating`` frames: an OS process blocked in receive is already
watching all its sockets, so the separate signal (needed in PVM to
interrupt a *computing* process) reduces to the poll-point check.

Worker architecture mirrors the simulator: one reader thread per socket
feeds a single inbox queue; the protocol logic is single-threaded on top.
"""

from __future__ import annotations

import logging
import multiprocessing as mp
import os
import queue
import socket
import threading
import time
from dataclasses import dataclass
from typing import Any, Callable

from repro.codec import NATIVE, Architecture, decode, encode
from repro.core.streaming import ChunkSource
from repro.directory.chordring import ChordRing
from repro.directory.hashring import HashRing
from repro.directory.spec import DirectorySpec
from repro.obs import MetricsRegistry, ObsConfig, RegistryCollector, WorkerObs
from repro.obs.metrics import POW2_BUCKETS
from repro.runtime.framing import (
    FrameBatcher,
    FrameClosed,
    FrameReader,
    FrameStats,
    recv_frame,
    send_frame,
    send_frame_fast,
)
from repro.runtime.mp_directory import (
    DaemonClientConfig,
    DirectoryDaemonHost,
    MPDirectoryClient,
)

__all__ = ["MPCluster", "MPApi"]

_BACKLOG = 16
_CONNECT_TIMEOUT = 10.0

log = logging.getLogger("repro.mp")


def _configure_logging() -> None:
    """Honor ``REPRO_MP_LOG=<level>`` (``REPRO_MP_DEBUG=1`` implies
    ``debug``) on the ``repro.mp`` logger.

    Runs in the launcher and again in each worker (fork keeps the
    handler; a spawn-style entry would reconfigure). Without either
    variable the logger stays unconfigured — warnings and above still
    reach stderr through logging's last-resort handler.
    """
    level_name = os.environ.get("REPRO_MP_LOG")
    if not level_name and os.environ.get("REPRO_MP_DEBUG"):
        level_name = "debug"
    if not level_name:
        return
    level = getattr(logging, level_name.upper(), None)
    if not isinstance(level, int):
        raise ValueError(f"REPRO_MP_LOG={level_name!r} is not a log level")
    log.setLevel(level)
    if not log.handlers:
        handler = logging.StreamHandler()
        handler.setFormatter(logging.Formatter(
            "[mp %(process)d %(created).3f] %(levelname)s %(message)s"))
        log.addHandler(handler)
        log.propagate = False


# ---------------------------------------------------------------------------
# registry (the scheduler), runs as a thread in the launcher process
# ---------------------------------------------------------------------------

class _LogicalDirectory:
    """Sharded / Chord view of the registry's location records.

    The default mp directory keeps a single registry TCP server (pass
    ``DirectorySpec(..., daemons=True)`` for real out-of-process shard
    daemons — :mod:`repro.runtime.mp_directory`); here the
    *partitioning* is what is exercised: records live in
    per-node stores assigned by the same :class:`HashRing` /
    :class:`ChordRing` structures the simulator's daemons use, every
    lookup is routed to its serving node (walking real finger-table hops
    for chord), and per-node counters expose the load split the ablation
    measures. Writes are applied under the registry lock, version-stamped
    to each owner, exactly as the simulator's publisher would converge
    them.
    """

    def __init__(self, spec: DirectorySpec,
                 metrics: MetricsRegistry | None = None):
        self.spec = spec
        ids = list(range(spec.nodes))
        if spec.backend == "sharded":
            self.topology = HashRing(ids, replication=spec.replication,
                                     vnodes=spec.vnodes)
        else:
            self.topology = ChordRing(ids, replication=spec.replication,
                                      bits=spec.bits)
        #: node -> rank -> {"status", "addr", "init_addr", "version"}
        self.stores: dict[int, dict[int, dict]] = {i: {} for i in ids}
        # the single source of truth for per-node load counters; the
        # dict-shaped view the ablation reads is derived in stats()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._counters = {
            i: {name: self.metrics.counter(f"dir.{name}", node=i)
                for name in ("lookups", "forwards", "updates")}
            for i in ids}
        self._versions: dict[int, int] = {}

    def write(self, rank: int, status: str, addr: tuple | None,
              init_addr: tuple | None) -> None:
        version = self._versions.get(rank, 0) + 1
        self._versions[rank] = version
        rec = {"status": status, "addr": addr, "init_addr": init_addr,
               "version": version}
        for node in self.topology.owners(rank):
            self.stores[node][rank] = rec
            self._counters[node]["updates"].inc()

    def lookup(self, rank: int, entry: int | None = None
               ) -> tuple[dict | None, int]:
        """The owning node's record of *rank*, plus hops taken to it."""
        if isinstance(self.topology, ChordRing):
            if entry is None:
                entry = rank % len(self.topology.nodes)
            path = self.topology.route(entry, rank)
            for node in path[:-1]:
                self._counters[node]["forwards"].inc()
            serving, hops = path[-1], len(path) - 1
        else:
            serving, hops = self.topology.primary(rank), 0
        self._counters[serving]["lookups"].inc()
        return self.stores[serving].get(rank), hops

    def stats(self) -> dict[int, dict[str, int]]:
        """Per-node counter view, derived from the metrics registry."""
        return {i: {name: c.value for name, c in counters.items()}
                for i, counters in self._counters.items()}


class _Registry:
    """Rank → address table plus migration coordination."""

    def __init__(self, directory: "DirectorySpec | str | None" = None,
                 obs: ObsConfig | None = None) -> None:
        spec = DirectorySpec.coerce(directory)
        self.spec = spec
        self.collector = RegistryCollector() if obs is not None else None
        metrics = self.collector.metrics if self.collector else None
        #: daemons=True: records live in out-of-process shard daemons
        #: (repro.runtime.mp_directory); the registry keeps its in-memory
        #: maps as the authoritative scheduler-fallback view and the
        #: ("lookup",) ctl frame answers from those
        self.daemon_host = (DirectoryDaemonHost(spec, metrics=metrics)
                            if spec.distributed and spec.daemons else None)
        self.directory = (_LogicalDirectory(spec, metrics=metrics)
                          if spec.distributed and not spec.daemons
                          else None)
        # migration-window bookkeeping is always on (two clock reads per
        # migration) so the obs-on/obs-off A/B measures identical spans
        self._mig_t0: dict[int, float] = {}
        self.migration_windows: list[dict] = []
        self.listener = socket.create_server(("127.0.0.1", 0))
        self.addr = self.listener.getsockname()
        self._lock = threading.Lock()
        self.locations: dict[int, tuple] = {}
        self.status: dict[int, str] = {}
        self.init_addr: dict[int, tuple] = {}
        self.worker_ctl: dict[int, socket.socket] = {}
        self.results: dict[int, Any] = {}
        self.done = threading.Event()
        self.expected_results = 0
        self._threads: list[threading.Thread] = []
        t = threading.Thread(target=self._accept_loop, daemon=True)
        t.start()
        self._threads.append(t)

    def _accept_loop(self) -> None:
        while True:
            try:
                conn, _ = self.listener.accept()
            except OSError:
                return
            t = threading.Thread(target=self._serve, args=(conn,),
                                 daemon=True)
            t.start()
            self._threads.append(t)

    def _serve(self, conn: socket.socket) -> None:
        rank = None
        try:
            while True:
                frame = recv_frame(conn)
                kind = frame[0]
                if kind == "register":
                    _, rank, addr = frame
                    with self._lock:
                        self.locations[rank] = tuple(addr)
                        self.status[rank] = "running"
                        self.worker_ctl[rank] = conn
                        self._dir_write(rank)
                    send_frame(conn, ("registered",))
                elif kind == "register_init":
                    _, rank, addr = frame
                    with self._lock:
                        self.init_addr[rank] = tuple(addr)
                        self._dir_write(rank)
                    send_frame(conn, ("registered",))
                elif kind == "lookup":
                    _, target = frame
                    with self._lock:
                        if self.directory is not None:
                            rec, _hops = self.directory.lookup(target)
                            # an unknown record is "starting", never
                            # terminated — the requester retries
                            st = rec["status"] if rec else "starting"
                            addr = (rec["init_addr"] if st == "migrating"
                                    else rec["addr"]) if rec else None
                        else:
                            st = self.status.get(target, "starting")
                            if st == "migrating":
                                addr = self.init_addr.get(target)
                            else:
                                addr = self.locations.get(target)
                    send_frame(conn, ("location", target, st, addr))
                elif kind == "migration_start":
                    _, rank = frame
                    with self._lock:
                        self.status[rank] = "migrating"
                        addr = self.init_addr[rank]
                        self._dir_write(rank)
                        self._mig_t0[rank] = time.time()
                    send_frame(conn, ("new_process", addr))
                elif kind == "restore_complete":
                    _, rank, addr = frame
                    with self._lock:
                        self.locations[rank] = tuple(addr)
                        self.status[rank] = "running"
                        self.init_addr.pop(rank, None)
                        self.worker_ctl[rank] = conn
                        self._dir_write(rank)
                        table = dict(self.locations)
                        t0 = self._mig_t0.pop(rank, None)
                        if t0 is not None:
                            window = {"rank": rank, "t0": t0,
                                      "seconds": time.time() - t0}
                            self.migration_windows.append(window)
                        else:
                            window = None
                    if window is not None and self.collector is not None:
                        self.collector.record(
                            "registry", "migration_window",
                            rank=window["rank"], seconds=window["seconds"])
                    send_frame(conn, ("pl_snapshot", table))
                elif kind == "dir_membership":
                    # a worker asking for the daemon-shard membership
                    # view (after a scheduler fallback, to catch churn)
                    host = self.daemon_host
                    send_frame(conn, ("dir_membership",
                                      host.membership() if host else None))
                elif kind == "obs":
                    # one-way event/metric batch from a worker
                    if self.collector is not None:
                        self.collector.absorb(frame)
                elif kind == "result":
                    _, rank, value = frame
                    with self._lock:
                        self.results[rank] = value
                        if len(self.results) >= self.expected_results:
                            self.done.set()
                elif kind == "terminated":
                    _, rank = frame
                    with self._lock:
                        self.status[rank] = "terminated"
                        self._dir_write(rank)
                else:  # pragma: no cover - protocol error guard
                    raise ValueError(f"bad registry frame {frame!r}")
        except (FrameClosed, OSError):
            return

    def _dir_write(self, rank: int) -> None:
        """Mirror the current record into the directory (with the
        registry lock held): the in-registry logical shards, or — with
        daemons — a non-blocking publish to the shard processes (the
        host's publisher thread retransmits until every owner acks)."""
        if self.directory is not None:
            self.directory.write(rank, self.status.get(rank, "starting"),
                                 self.locations.get(rank),
                                 self.init_addr.get(rank))
        if self.daemon_host is not None:
            self.daemon_host.publish(rank,
                                     self.status.get(rank, "starting"),
                                     self.locations.get(rank),
                                     self.init_addr.get(rank))

    def signal_migrate(self, rank: int, arch_name: str) -> None:
        with self._lock:
            conn = self.worker_ctl[rank]
        send_frame(conn, ("migrate", arch_name))

    def close(self) -> None:
        try:
            self.listener.close()
        except OSError:
            pass
        if self.daemon_host is not None:
            self.daemon_host.close()


# ---------------------------------------------------------------------------
# worker-side plumbing
# ---------------------------------------------------------------------------

@dataclass
class _StoredMessage:
    src: int
    tag: int
    body: Any


class _PeerLink:
    """One TCP connection to a peer, with its reader thread.

    ``fastpath`` switches both directions to the zero-copy framing
    (``sendmsg`` scatter-gather out, ``recv_into`` reader in); the wire
    format is unchanged, so a fast link interoperates with a legacy one.

    On fast links, steady-state ``data`` frames go through
    :meth:`stage`: they queue in a per-link :class:`FrameBatcher` and
    leave together — when the batcher limit fills, when the owning
    worker is about to block (it cannot be waiting on a peer that is
    itself waiting on unstaged bytes), or when a control frame must go
    out (:meth:`send` flushes first to preserve per-link FIFO order).
    ``stats`` (wire accounting; single writer per direction) makes the
    syscall savings measurable: ``frames_out - flushes`` writes saved.
    """

    def __init__(self, sock: socket.socket, rank: int, inbox: queue.Queue,
                 fastpath: bool = False,
                 stats: FrameStats | None = None):
        self.sock = sock
        self.rank = rank
        self.open = True
        self.fastpath = fastpath
        self.stats = stats
        self._batcher = (FrameBatcher(sock, stats=stats)
                         if fastpath else None)
        self._wlock = threading.Lock()
        self._reader = threading.Thread(
            target=self._read_loop, args=(inbox,), daemon=True)
        self._reader.start()

    def _read_loop(self, inbox: queue.Queue) -> None:
        try:
            if self.fastpath:
                reader = FrameReader(self.sock, stats=self.stats)
                while True:
                    inbox.put(("peer", self.rank, reader.read_frame()))
            while True:
                inbox.put(("peer", self.rank,
                           recv_frame(self.sock, stats=self.stats)))
        except (FrameClosed, OSError):
            # identify *which* link closed: a stale EOF from a replaced
            # connection must not mark its successor closed
            inbox.put(("peer_closed", self.rank, self))

    def send(self, frame: Any) -> None:
        """Write *frame* now (flushing anything staged before it)."""
        with self._wlock:
            if self._batcher is not None:
                self._batcher.flush()
            if self.fastpath:
                send_frame_fast(self.sock, frame, stats=self.stats)
            else:
                send_frame(self.sock, frame, stats=self.stats)

    def stage(self, frame: Any) -> None:
        """Queue *frame* for coalesced delivery (fast links); legacy
        links fall back to an immediate write."""
        with self._wlock:
            if self._batcher is not None:
                self._batcher.add(frame)
            elif self.fastpath:
                send_frame_fast(self.sock, frame, stats=self.stats)
            else:
                send_frame(self.sock, frame, stats=self.stats)

    def flush(self) -> None:
        if self._batcher is None:
            return
        with self._wlock:
            try:
                self._batcher.flush()
            except OSError:
                pass  # peer gone; its reader thread reports the close

    def close(self) -> None:
        self.open = False
        self.flush()
        try:
            self.sock.shutdown(socket.SHUT_WR)
        except OSError:
            pass


class MPApi:
    """The programming interface inside a multiprocess worker."""

    def __init__(self, worker: "_Worker"):
        self._w = worker

    @property
    def rank(self) -> int:
        return self._w.rank

    @property
    def size(self) -> int:
        return self._w.nranks

    @property
    def incarnation(self) -> int:
        """0 for the original process, +1 per migration (real PIDs differ)."""
        return self._w.incarnation

    @property
    def pid(self) -> int:
        import os
        return os.getpid()

    def send(self, dest: int, body: Any, tag: int = 0) -> None:
        self._w.send(dest, body, tag)

    def recv(self, src: int | None = None, tag: int | None = None
             ) -> _StoredMessage:
        return self._w.recv(src, tag)

    def compute(self, seconds: float) -> None:
        time.sleep(seconds)

    def poll_migration(self, state: dict) -> None:
        self._w.poll_migration(state)


class _Worker:
    """Protocol engine of one rank (one OS process)."""

    def __init__(self, rank: int, nranks: int, registry_addr: tuple,
                 program: Callable, initializing: bool,
                 arch: Architecture, incarnation: int,
                 fastpath: bool = True, obs: ObsConfig | None = None,
                 dir_cfg: DaemonClientConfig | None = None):
        self.rank = rank
        self.nranks = nranks
        self.program = program
        self.arch = arch
        self.incarnation = incarnation
        self.fastpath = fastpath
        self.inbox: queue.Queue = queue.Queue()
        self.links: dict[int, _PeerLink] = {}
        #: every FrameStats handed to a link, including replaced links —
        #: summed into the final metrics snapshot
        self._link_stats: list[FrameStats] = []
        self.recvlist: list[_StoredMessage] = []
        self.pl: dict[int, tuple] = {}
        self.migrate_requested: str | None = None
        self.migrating = False

        self.obs: WorkerObs | None = None
        if obs is not None:
            actor = (f"p{rank}" if incarnation == 0
                     else f"p{rank}.m{incarnation}")
            self.obs = WorkerObs(obs, rank, actor, self._send_obs_batch)
            m = self.obs.metrics
            self._c_sent = m.counter("mp.msgs_sent", rank=rank)
            self._c_recv = m.counter("mp.msgs_recv", rank=rank)
            self._c_connects = m.counter("mp.connects", rank=rank)
            self._c_lookups = m.counter("mp.lookups", rank=rank)
            self._c_retries = m.counter("mp.connect_retries", rank=rank)
            self._h_scan = m.histogram("mp.recvlist_scan",
                                       bounds=POW2_BUCKETS, rank=rank)

        # listener for incoming peer connections
        self.listener = socket.create_server(("127.0.0.1", 0),
                                             backlog=_BACKLOG)
        self.addr = self.listener.getsockname()
        threading.Thread(target=self._accept_loop, daemon=True).start()

        # registry control connection
        self.ctl = socket.create_connection(registry_addr,
                                            timeout=_CONNECT_TIMEOUT)
        self.ctl.settimeout(None)
        self._ctl_replies: queue.Queue = queue.Queue()
        kind = "register_init" if initializing else "register"
        send_frame(self.ctl, (kind, rank, self.addr))
        threading.Thread(target=self._ctl_loop, daemon=True).start()
        self._await_ctl("registered")

        # out-of-process directory: lookups consult the shard daemons
        # (replica walk / entry rotation over real sockets) and fall
        # back to the registry's authoritative ("lookup",) answer only
        # once the ladder is spent
        self.dir_client: MPDirectoryClient | None = None
        if dir_cfg is not None:
            on_count = None
            if self.obs is not None:
                counters = {
                    key: self.obs.metrics.counter(f"mp.{key}", rank=rank)
                    for key in ("dir_lookups", "dir_failovers",
                                "dir_unknown", "dir_fallbacks")}
                on_count = lambda key, n: counters[key].inc(n)
            self.dir_client = MPDirectoryClient(
                dir_cfg, salt=rank, fallback=self._scheduler_lookup,
                refresh=self._fetch_membership, on_count=on_count)

    # -- observability -----------------------------------------------------
    def _send_obs_batch(self, batch: tuple) -> None:
        # protocol-thread only (same discipline as _rpc): events are
        # recorded and flushed from the thread running the program
        send_frame(self.ctl, batch)

    def _finalize_obs(self) -> None:
        """Fold wire accounting into the metrics and ship everything."""
        if self.obs is None:
            return
        total = FrameStats()
        for s in self._link_stats:
            total.add(s)
        m = self.obs.metrics
        for field, value in total.as_dict().items():
            name = ("mp.link_flushes" if field == "flushes"
                    else f"mp.{field}")
            m.counter(name, rank=self.rank).inc(value)
        self.obs.flush(final=True)

    def _make_link(self, sock: socket.socket, peer_rank: int) -> _PeerLink:
        stats = FrameStats() if self.obs is not None else None
        if stats is not None:
            self._link_stats.append(stats)
        return _PeerLink(sock, peer_rank, self.inbox, self.fastpath,
                         stats=stats)

    def _flush_links(self) -> None:
        """Push every link's staged frames out before blocking."""
        for link in self.links.values():
            if link.open:
                link.flush()

    # -- socket plumbing ---------------------------------------------------
    def _accept_loop(self) -> None:
        while True:
            try:
                conn, _ = self.listener.accept()
            except OSError:
                return  # listener closed (migration)
            try:
                hello = recv_frame(conn)
            except (FrameClosed, OSError):
                continue
            if hello[0] == "hello":
                # the application-level conn_ack of Fig. 3: TCP connect
                # success alone is NOT establishment (a connect can land in
                # the backlog of a migrating process's dying listener)
                if self.migrating:
                    conn.close()  # reject: requester will consult registry
                    continue
                try:
                    send_frame(conn, ("hello_ack", self.rank))
                except OSError:
                    continue
                peer_rank = hello[1]
                self.inbox.put(("new_link", peer_rank,
                                self._make_link(conn, peer_rank)))
            elif hello[0] == "state_transfer":
                # the migrating process's transfer connection; its frames
                # (recvlist, state/state_chunk) flow into the inbox like
                # peer frames
                self._make_link(conn, hello[1])
            else:
                conn.close()

    def _ctl_loop(self) -> None:
        try:
            while True:
                frame = recv_frame(self.ctl)
                if frame[0] == "migrate":
                    self.inbox.put(("ctl", None, frame))
                else:
                    self._ctl_replies.put(frame)
        except (FrameClosed, OSError):
            return

    def _await_ctl(self, kind: str) -> tuple:
        frame = self._ctl_replies.get(timeout=_CONNECT_TIMEOUT)
        assert frame[0] == kind, f"expected {kind}, got {frame!r}"
        return frame

    def _rpc(self, request: tuple, reply_kind: str) -> tuple:
        send_frame(self.ctl, request)
        return self._await_ctl(reply_kind)

    def _scheduler_lookup(self, dest: int) -> tuple:
        """The directory client's last-resort rung: ask the scheduler."""
        _, _, status, addr = self._rpc(("lookup", dest), "location")
        return status, addr

    def _fetch_membership(self) -> DaemonClientConfig | None:
        """Pull the current shard membership (post-fallback refresh)."""
        frame = self._rpc(("dir_membership",), "dir_membership")
        return (DaemonClientConfig(**frame[1])
                if frame[1] is not None else None)

    def _lookup(self, dest: int) -> tuple:
        """Resolve *dest* — shard daemons first when configured, the
        registry otherwise. Returns ``(status, addr)``."""
        if self.dir_client is not None:
            return self.dir_client.lookup(dest)
        return self._scheduler_lookup(dest)

    # -- connection management ----------------------------------------------
    def _connect(self, dest: int) -> _PeerLink:
        addr = self.pl.get(dest)
        obs = self.obs
        t_start = time.time() if obs is not None else 0.0
        attempts = 0
        for _ in range(60):
            if addr is not None:
                attempts += 1
                sock = None
                try:
                    sock = socket.create_connection(
                        tuple(addr), timeout=_CONNECT_TIMEOUT)
                    send_frame(sock, ("hello", self.rank))
                    # wait for the application-level acknowledgement: a
                    # migrating process never answers (its listener is
                    # closed or the accept loop is gone), so the connect
                    # attempt fails here instead of losing messages into a
                    # half-dead backlog connection
                    sock.settimeout(2.0)
                    ack = recv_frame(sock)
                    if ack[0] != "hello_ack":
                        raise OSError(f"bad handshake {ack!r}")
                    sock.settimeout(None)
                    link = self._make_link(sock, dest)
                    self.links[dest] = link
                    if obs is not None:
                        self._c_connects.inc()
                        self._c_retries.inc(attempts - 1)
                        obs.event("connect", dest=dest, attempts=attempts,
                                  seconds=time.time() - t_start)
                    return link
                except (OSError, FrameClosed):
                    if sock is not None:
                        try:
                            sock.close()
                        except OSError:
                            pass
                    # refused / unacked / stale address: consult the
                    # directory (shard daemons, or the registry)
            status, new_addr = self._lookup(dest)
            log.debug("rank %d: lookup(%d) -> %s %s",
                      self.rank, dest, status, new_addr)
            if obs is not None:
                self._c_lookups.inc()
                obs.event("lookup", dest=dest, status=status)
            if status == "terminated":
                raise RuntimeError(f"rank {dest} has terminated")
            if new_addr is None or tuple(new_addr) == addr:
                time.sleep(0.05)  # still starting/migrating; retry shortly
            if new_addr is not None:
                addr = tuple(new_addr)
                self.pl[dest] = addr
        raise RuntimeError(f"could not connect to rank {dest}")

    # -- inbox dispatch ----------------------------------------------------
    def _dispatch(self, item: tuple, drain_waiting: set | None = None) -> None:
        kind, peer, payload = item
        if kind == "new_link":
            old = self.links.get(peer)
            self.links[peer] = payload
            if old is not None and old.open:
                old.close()
            if drain_waiting is not None:
                payload.send(("peer_migrating", self.rank))
                payload.close()
                drain_waiting.add(peer)
        elif kind == "peer_closed":
            link = self.links.get(peer)
            if link is not None and (payload is None or link is payload):
                link.open = False
                # the peer only shut its *write* side; frames staged on
                # this link may still traverse it — push them out rather
                # than abandon them in the batcher (flush eats OSError)
                link.flush()
                if drain_waiting is not None and peer in drain_waiting:
                    drain_waiting.discard(peer)
                    if self.obs is not None:
                        self.obs.event("drain_peer", peer=peer,
                                       last="closed", rank=self.rank)
        elif kind == "ctl":
            if payload[0] == "migrate":
                self.migrate_requested = payload[1]
        elif kind == "peer":
            fkind = payload[0]
            if fkind == "data":
                _, src, tag, body = payload
                self.recvlist.append(_StoredMessage(src, tag, body))
            elif fkind == "peer_migrating":
                link = self.links.pop(peer, None)
                if link is not None:
                    if drain_waiting is None:
                        link.send(("eom", self.rank))
                    link.close()
                if drain_waiting is not None and peer in drain_waiting:
                    drain_waiting.discard(peer)
                    if self.obs is not None:
                        self.obs.event("drain_peer", peer=peer,
                                       last="peer_migrating", rank=self.rank)
            elif fkind == "eom":
                link = self.links.pop(peer, None)
                if link is not None:
                    link.close()
                if drain_waiting is not None and peer in drain_waiting:
                    drain_waiting.discard(peer)
                    if self.obs is not None:
                        self.obs.event("drain_peer", peer=peer,
                                       last="eom", rank=self.rank)
            else:
                raise ValueError(f"bad peer frame {payload!r}")
        else:  # pragma: no cover
            raise ValueError(f"bad inbox item {item!r}")

    # -- the API operations ---------------------------------------------------
    def send(self, dest: int, body: Any, tag: int = 0) -> None:
        link = self.links.get(dest)
        if link is None or not link.open:
            link = self._connect(dest)
        link.stage(("data", self.rank, tag, body))
        if self.obs is not None:
            self._c_sent.inc()
            if self.obs.sample_message():
                self.obs.event("send", dest=dest, tag=tag)

    def recv(self, src: int | None, tag: int | None) -> _StoredMessage:
        while True:
            for i, m in enumerate(self.recvlist):
                if (src is None or m.src == src) and \
                        (tag is None or m.tag == tag):
                    if self.obs is not None:
                        self._c_recv.inc()
                        self._h_scan.record(i + 1)
                        if self.obs.sample_message():
                            self.obs.event("recv", src=m.src, tag=m.tag)
                    return self.recvlist.pop(i)
            try:
                item = self.inbox.get_nowait()
            except queue.Empty:
                # about to block on the network: staged outbound frames
                # must leave first, or two ranks could deadlock waiting
                # on each other's batcher
                self._flush_links()
                item = self.inbox.get()
            self._dispatch(item)

    def poll_migration(self, state: dict) -> None:
        # a poll point is a yield point: let staged traffic out
        self._flush_links()
        # collect any pending control without blocking
        while True:
            try:
                item = self.inbox.get_nowait()
            except queue.Empty:
                break
            self._dispatch(item)
        if self.migrate_requested is not None:
            self._migrate(state)

    # -- migration (Fig. 5) -------------------------------------------------
    def _span(self, phase: str):
        """A migration-phase span, or None with observability off."""
        return self.obs.span(phase) if self.obs is not None else None

    def _migrate(self, state: dict) -> None:
        obs = self.obs
        freeze = self._span("freeze")
        self.migrating = True  # accept loop stops acking from here on
        log.debug("rank %d: migrate() starting", self.rank)
        _, new_addr = self._rpc(("migration_start", self.rank),
                                "new_process")
        if freeze is not None:
            freeze.close()
        # reject further connections: close the listener. The rejection
        # window stays open until this process exits — its span is
        # closed (and the window measured) just before _Migrated.
        reject = self._span("reject")
        self.listener.close()
        # coordinate every connected peer
        drain = self._span("drain")
        waiting: set[int] = set()
        for rank, link in list(self.links.items()):
            if link.open:
                link.send(("peer_migrating", self.rank))
                link.close()
                waiting.add(rank)
        npeers = len(waiting)
        log.debug("rank %d: draining, waiting=%s", self.rank, waiting)
        while waiting:
            self._dispatch(self.inbox.get(timeout=_CONNECT_TIMEOUT),
                           drain_waiting=waiting)
        # Quiescence sweep: a connection acked just before the migration
        # flag went up may still deliver its hello and first data; give
        # such in-flight establishments a grace window, coordinating any
        # that appear (the analogue of the simulator's pending-grant
        # accounting, where grants are tracked exactly).
        deadline = time.time() + 0.25
        while time.time() < deadline or waiting:
            try:
                item = self.inbox.get(timeout=0.05)
            except queue.Empty:
                if not waiting:
                    break
                continue
            self._dispatch(item, drain_waiting=waiting)
        if drain is not None:
            drain.close(peers=npeers)
        log.debug("rank %d: drain complete; transferring to %s",
                  self.rank, new_addr)
        # transfer the received-message-list and the machine-independent
        # execution/memory state
        transfer = self._span("transfer")
        xfer = socket.create_connection(tuple(new_addr),
                                        timeout=_CONNECT_TIMEOUT)
        nchunks = 0
        if self.fastpath:
            # chunked stream: the destination starts absorbing while we
            # are still encoding; small leading frames (handshake,
            # recvlist) coalesce with the first chunk into one sendmsg
            batch = FrameBatcher(xfer)
            batch.add(("state_transfer", self.rank))
            batch.add(("recvlist",
                       [(m.src, m.tag, m.body) for m in self.recvlist]))
            source = ChunkSource(state, self.arch)
            while not source.exhausted:
                c = source.next_chunk()
                data = b"".join(c.parts)
                batch.add(("state_chunk", c.seq, data, c.last,
                           c.total_nbytes))
                nchunks += 1
                if obs is not None:
                    obs.event("state_chunk", seq=c.seq, nbytes=len(data),
                              last=c.last, rank=self.rank)
            batch.flush()
        else:
            send_frame(xfer, ("state_transfer", self.rank))
            send_frame(xfer, ("recvlist",
                              [(m.src, m.tag, m.body)
                               for m in self.recvlist]))
            blob = encode(state, self.arch, fastpath=False)
            send_frame(xfer, ("state", blob))
            nchunks = 1
            if obs is not None:
                obs.event("state_chunk", seq=0, nbytes=len(blob),
                          last=True, rank=self.rank)
        xfer.close()
        if transfer is not None:
            transfer.close(chunks=nchunks)
        if reject is not None:
            reject.close()
        log.debug("rank %d: state shipped; exiting source process",
                  self.rank)
        self._finalize_obs()
        raise _Migrated()


class _Migrated(BaseException):
    """Unwinds the worker after its state has been shipped."""


# ---------------------------------------------------------------------------
# process entry points
# ---------------------------------------------------------------------------

def _worker_main(rank: int, nranks: int, registry_addr: tuple,
                 program: Callable, pl: dict, arch: Architecture,
                 fastpath: bool = True,
                 obs: ObsConfig | None = None,
                 state: dict | None = None,
                 dir_cfg: DaemonClientConfig | None = None) -> None:
    _configure_logging()
    w = _Worker(rank, nranks, registry_addr, program, initializing=False,
                arch=arch, incarnation=0, fastpath=fastpath, obs=obs,
                dir_cfg=dir_cfg)
    w.pl = dict(pl)
    _run_program(w, dict(state) if state else {})


def _init_main(rank: int, nranks: int, registry_addr: tuple,
               program: Callable, arch: Architecture,
               incarnation: int, fastpath: bool = True,
               obs: ObsConfig | None = None,
               dir_cfg: DaemonClientConfig | None = None) -> None:
    _configure_logging()
    w = _Worker(rank, nranks, registry_addr, program, initializing=True,
                arch=arch, incarnation=incarnation, fastpath=fastpath,
                obs=obs, dir_cfg=dir_cfg)
    # Fig. 7: accept connections from the start; wait for the transfer.
    # The state arrives either as one legacy ("state", blob) frame or as
    # an ordered run of ("state_chunk", seq, data, last, total) frames.
    restore = w._span("restore")
    recvlist_a = None
    state_blob = None
    chunks: list = []
    while state_blob is None:
        item = w.inbox.get(timeout=_CONNECT_TIMEOUT)
        kind, peer, payload = item
        if kind == "peer" and payload[0] == "recvlist":
            recvlist_a = payload[1]
        elif kind == "peer" and payload[0] == "state":
            state_blob = payload[1]
        elif kind == "peer" and payload[0] == "state_chunk":
            _, seq, data, last, total = payload
            if seq != len(chunks):
                raise ValueError(
                    f"state chunk {seq} out of order (expected "
                    f"{len(chunks)}); transfer channel is not FIFO?")
            chunks.append(data)
            if last:
                state_blob = b"".join(chunks)
                if len(state_blob) != total:
                    raise ValueError(
                        f"state stream truncated: got {len(state_blob)} "
                        f"of {total} bytes")
        else:
            w._dispatch(item)
    # prepend ListA in front of whatever arrived on new connections
    w.recvlist = [_StoredMessage(*t) for t in recvlist_a] + w.recvlist
    state = decode(state_blob)
    if restore is not None:
        restore.close(nbytes=len(state_blob), chunks=len(chunks) or 1)
    log.debug("init rank %d: state restored (%d bytes)",
              rank, len(state_blob))
    commit = w._span("commit")
    frame = w._rpc(("restore_complete", rank, w.addr), "pl_snapshot")
    w.pl = {r: tuple(a) for r, a in frame[1].items()}
    if commit is not None:
        commit.close()
    _run_program(w, state)


def _run_program(w: _Worker, state: dict) -> None:
    api = MPApi(w)
    try:
        result = w.program(api, state)
    except _Migrated:
        return
    for link in w.links.values():
        if link.open:
            try:
                link.send(("eom", w.rank))
            except OSError:
                pass
            link.close()
    # final event/metric batch must precede the result frame: once every
    # rank has reported, the launcher may tear the registry down
    w._finalize_obs()
    send_frame(w.ctl, ("result", w.rank, result))
    send_frame(w.ctl, ("terminated", w.rank))


# ---------------------------------------------------------------------------
# launcher
# ---------------------------------------------------------------------------

class MPCluster:
    """Launch and steer a multiprocess computation.

    Example::

        cluster = MPCluster(program, nranks=2)
        cluster.start()
        time.sleep(0.2)
        cluster.migrate(1)
        results = cluster.join()
    """

    def __init__(self, program: Callable, nranks: int,
                 arch: Architecture = NATIVE,
                 dest_arch: Architecture = NATIVE,
                 directory: "DirectorySpec | str | None" = None,
                 fastpath: bool = True,
                 obs: "ObsConfig | bool | None" = None,
                 init_states: "list[dict] | None" = None):
        _configure_logging()
        self.program = program
        self.nranks = nranks
        #: optional per-rank initial program state (index = rank)
        self.init_states = init_states
        self.arch = arch
        self.dest_arch = dest_arch
        #: zero-copy framing + chunked state transfer; False reproduces
        #: the original copy-per-frame wire path (A/B baseline)
        self.fastpath = fastpath
        #: observability: True / ObsConfig enables event collection and
        #: worker metrics, merged at the registry (see repro.obs)
        self.obs = ObsConfig.coerce(obs)
        self.registry = _Registry(directory=directory, obs=self.obs)
        self.registry.expected_results = nranks
        self._procs: list[mp.Process] = []
        self._incarnation: dict[int, int] = {}
        self._ctx = mp.get_context("fork")

    def _dir_cfg(self) -> DaemonClientConfig | None:
        """Shard-daemon membership to hand a process being spawned."""
        host = self.registry.daemon_host
        return host.client_config() if host is not None else None

    def start(self) -> "MPCluster":
        dir_cfg = self._dir_cfg()
        for rank in range(self.nranks):
            state = self.init_states[rank] if self.init_states else None
            p = self._ctx.Process(
                target=_worker_main,
                args=(rank, self.nranks, self.registry.addr, self.program,
                      {}, self.arch, self.fastpath, self.obs, state,
                      dir_cfg),
                daemon=True)
            p.start()
            self._procs.append(p)
        # wait until every rank registered
        deadline = time.time() + _CONNECT_TIMEOUT
        while time.time() < deadline:
            with self.registry._lock:
                if len(self.registry.locations) == self.nranks:
                    return self
            time.sleep(0.01)
        raise RuntimeError("workers failed to register")

    def migrate(self, rank: int) -> None:
        """Move *rank* into a brand-new OS process.

        Waits for any in-flight migration of the same rank to commit
        first (the registry must hold a live control connection to the
        current incarnation before it can signal it).
        """
        deadline = time.time() + _CONNECT_TIMEOUT
        while time.time() < deadline:
            with self.registry._lock:
                ready = (self.registry.status.get(rank) == "running"
                         and rank not in self.registry.init_addr)
            if ready:
                break
            time.sleep(0.01)
        else:
            raise RuntimeError(f"rank {rank} is not in a migratable state")
        inc = self._incarnation.get(rank, 0) + 1
        self._incarnation[rank] = inc
        p = self._ctx.Process(
            target=_init_main,
            args=(rank, self.nranks, self.registry.addr, self.program,
                  self.dest_arch, inc, self.fastpath, self.obs,
                  self._dir_cfg()),
            daemon=True)
        p.start()
        self._procs.append(p)
        # wait for the initialized process to register, then signal
        deadline = time.time() + _CONNECT_TIMEOUT
        while time.time() < deadline:
            with self.registry._lock:
                if rank in self.registry.init_addr:
                    break
            time.sleep(0.01)
        else:
            raise RuntimeError("initialized process failed to register")
        self.registry.signal_migrate(rank, self.dest_arch.name)

    def join(self, timeout: float = 60.0) -> dict[int, Any]:
        """Wait for every rank's result; returns rank → program return."""
        if not self.registry.done.wait(timeout):
            raise TimeoutError("cluster did not finish in time")
        for p in self._procs:
            p.join(timeout=5.0)
        self.registry.close()
        return dict(self.registry.results)

    def directory_stats(self) -> dict[int, dict[str, int]] | None:
        """Per-directory-node lookup/forward/update counters.

        Logical (in-registry) shards: derived from the directory's
        metrics registry — the same counters ``metrics_snapshot()``
        exposes as ``dir.*`` — so the two views cannot drift. Daemon
        shards: each live daemon is polled over its own socket
        (unreachable daemons report ``None``).
        """
        host = self.registry.daemon_host
        if host is not None:
            return host.poll_stats()
        if self.registry.directory is None:
            return None
        with self.registry._lock:
            return self.registry.directory.stats()

    # -- shard-daemon control (daemons=True) --------------------------------
    def _daemon_host(self) -> DirectoryDaemonHost:
        host = self.registry.daemon_host
        if host is None:
            raise RuntimeError(
                "no shard daemons; construct MPCluster(directory="
                "DirectorySpec(backend='sharded', daemons=True))")
        return host

    def directory_kill(self, node_id: int) -> None:
        """SIGKILL one shard daemon (crash-stop; membership unchanged)."""
        self._daemon_host().kill(node_id)

    def directory_restart(self, node_id: int) -> None:
        """Respawn a killed shard at its old address and re-seed it."""
        self._daemon_host().restart(node_id)

    def directory_join(self):
        """Add a shard daemon, handing over records before the ring
        flips; returns the :class:`MembershipChange`."""
        return self._daemon_host().join()

    def directory_leave(self, node_id: int):
        """Remove a shard daemon after handing its records over."""
        return self._daemon_host().leave(node_id)

    def directory_live_shards(self) -> int | None:
        host = self.registry.daemon_host
        return host.live_count() if host is not None else None

    def migration_windows(self) -> list[dict]:
        """Registry-observed migration windows (always collected):
        ``{"rank", "t0", "seconds"}`` per migration, in commit order."""
        with self.registry._lock:
            return [dict(w) for w in self.registry.migration_windows]

    # -- observability read-out --------------------------------------------
    def _collector(self) -> RegistryCollector:
        if self.registry.collector is None:
            raise RuntimeError(
                "observability is off; construct MPCluster(obs=True)")
        return self.registry.collector

    def obs_events(self) -> list[dict]:
        """Merged, time-ordered event stream from every process."""
        return self._collector().events()

    def metrics_snapshot(self) -> list[dict]:
        """Cluster-wide metrics: every worker's final snapshot plus the
        registry's own (directory counters), merged."""
        return self._collector().metrics.snapshot()

    def write_obs_jsonl(self, path: str) -> int:
        """Write the merged JSONL artifact; returns the record count."""
        return self._collector().write_jsonl(path)

    def terminate(self) -> None:
        for p in self._procs:
            if p.is_alive():
                p.terminate()
        self.registry.close()

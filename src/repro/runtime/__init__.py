"""Execution backends.

* the **simulated** backend is the default everywhere else in the package
  (deterministic virtual time — :mod:`repro.sim` + :mod:`repro.vm`);
* :class:`MPCluster` (:mod:`repro.runtime.mp`) runs ranks as real OS
  processes over TCP and migrates them for real, with state crossing the
  process boundary through the machine-independent codec.
"""

from repro.runtime.framing import FrameClosed, recv_frame, send_frame
from repro.runtime.mp import MPApi, MPCluster
from repro.runtime.mp_directory import (
    DaemonClientConfig,
    DirectoryDaemonHost,
    MPDirectoryClient,
)

__all__ = ["DaemonClientConfig", "DirectoryDaemonHost", "FrameClosed",
           "MPApi", "MPCluster", "MPDirectoryClient", "recv_frame",
           "send_frame"]

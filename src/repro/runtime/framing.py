"""Length-prefixed message framing over stream sockets.

The multiprocess backend's wire format: a 4-byte big-endian length
followed by a pickled header/payload tuple. TCP gives the FIFO, reliable,
connection-oriented channel the protocols assume (paper Section 2.3 lists
TCP explicitly as a suitable substrate). Migration *state* payloads are
not pickled Python objects but opaque byte blobs produced by the
machine-independent codec — the pickle layer here plays the role PVM's
own wire encoding played, while heterogeneity of process state is handled
by :mod:`repro.codec`.
"""

from __future__ import annotations

import pickle
import socket
import struct
from typing import Any

__all__ = ["send_frame", "recv_frame", "FrameClosed"]

_HDR = struct.Struct(">I")
#: refuse absurd frames (corrupt stream guard)
MAX_FRAME = 256 * 1024 * 1024


class FrameClosed(Exception):
    """The peer closed the connection (clean EOF between frames)."""


def send_frame(sock: socket.socket, obj: Any) -> None:
    """Serialize *obj* and write it as one frame (blocking)."""
    payload = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    sock.sendall(_HDR.pack(len(payload)) + payload)


def _recv_exact(sock: socket.socket, n: int) -> bytes:
    buf = bytearray()
    while len(buf) < n:
        chunk = sock.recv(n - len(buf))
        if not chunk:
            raise FrameClosed(
                f"connection closed mid-frame ({len(buf)}/{n} bytes)")
        buf.extend(chunk)
    return bytes(buf)


def recv_frame(sock: socket.socket) -> Any:
    """Read one frame (blocking); raises :class:`FrameClosed` on EOF."""
    try:
        hdr = _recv_exact(sock, _HDR.size)
    except FrameClosed:
        raise
    (length,) = _HDR.unpack(hdr)
    if length > MAX_FRAME:
        raise ValueError(f"frame of {length} bytes exceeds limit")
    return pickle.loads(_recv_exact(sock, length))

"""Length-prefixed message framing over stream sockets.

The multiprocess backend's wire format: a 4-byte big-endian length
followed by a pickled header/payload tuple. TCP gives the FIFO, reliable,
connection-oriented channel the protocols assume (paper Section 2.3 lists
TCP explicitly as a suitable substrate). Migration *state* payloads are
not pickled Python objects but opaque byte blobs produced by the
machine-independent codec — the pickle layer here plays the role PVM's
own wire encoding played, while heterogeneity of process state is handled
by :mod:`repro.codec`.

Deserialization is **restricted**: control frames are built from a small
closed vocabulary (tuples, dicts, strings, numbers, byte blobs), so
:func:`recv_frame` uses an allowlist unpickler that refuses to
reconstruct anything else. A peer that injects a frame naming any other
class — the classic ``__reduce__`` → ``os.system`` pickle gadget — gets
:class:`UnsafeFrame` instead of code execution. Application *data*
payloads travel inside frames too and are therefore limited to the same
plain-data vocabulary; structured process state crosses the wire as
opaque codec bytes, never as pickled objects.

The fast path (:func:`send_frame_fast`, :class:`FrameReader`,
:class:`FrameBatcher`) speaks the *same* wire format — a legacy peer can
read fast-sent frames and vice versa — but avoids the per-frame copies:
``sendmsg`` scatter-gathers the header and payload instead of
concatenating them, and the reader fills one reusable buffer with
``recv_into`` instead of allocating a bytearray per frame. Every read
path, fast or legacy, goes through the same allowlist unpickler.
"""

from __future__ import annotations

import io
import pickle
import socket
import struct
from typing import Any

__all__ = ["send_frame", "recv_frame", "send_frame_fast", "FrameReader",
           "FrameBatcher", "FrameStats", "FrameClosed", "UnsafeFrame",
           "restricted_loads", "allow_frame_global", "ALLOWED_GLOBALS"]

_HDR = struct.Struct(">I")
#: refuse absurd frames (corrupt stream guard)
MAX_FRAME = 256 * 1024 * 1024

#: The complete vocabulary a wire frame may reference. Everything the mp
#: runtime sends is built from builtins plus these; anything else is an
#: attack or a bug, and both should fail loudly.
ALLOWED_GLOBALS: dict[tuple[str, str], Any] = {}


def allow_frame_global(module: str, name: str) -> None:
    """Admit ``module.name`` into the frame vocabulary.

    Subsystems that put their own (plain-data) message classes on the
    wire — e.g. the out-of-process directory daemons speaking
    :mod:`repro.directory.messages` — register them here at import time.
    Everything else stays forbidden; the allowlist grows only by
    explicit, reviewable calls.
    """
    import importlib
    obj = importlib.import_module(module)
    for part in name.split("."):
        obj = getattr(obj, part)
    ALLOWED_GLOBALS[(module, name)] = obj


# builtins that legitimate frames reference (pickle names a global for
# these when reconstructing containers and memoryview-backed bytes)
for _name in ("tuple", "list", "dict", "set", "frozenset", "bytes",
              "bytearray", "complex"):
    allow_frame_global("builtins", _name)


class FrameStats:
    """Per-connection wire accounting (single writer: the owning thread).

    ``frames_out``/``bytes_out`` count what left through this object,
    ``frames_in``/``bytes_in`` what arrived; for a :class:`FrameBatcher`,
    ``flushes`` counts the ``sendmsg`` calls actually issued, so
    ``frames_out - flushes`` is the number of syscalls coalescing saved.
    """

    __slots__ = ("frames_out", "bytes_out", "frames_in", "bytes_in",
                 "flushes")

    def __init__(self) -> None:
        self.frames_out = 0
        self.bytes_out = 0
        self.frames_in = 0
        self.bytes_in = 0
        self.flushes = 0

    def as_dict(self) -> dict:
        return {name: getattr(self, name) for name in self.__slots__}

    def add(self, other: "FrameStats") -> None:
        for name in self.__slots__:
            setattr(self, name, getattr(self, name) + getattr(other, name))


class FrameClosed(Exception):
    """The peer closed the connection (clean EOF between frames)."""


class UnsafeFrame(Exception):
    """A frame referenced a global outside the frame vocabulary."""


class _RestrictedUnpickler(pickle.Unpickler):
    def find_class(self, module: str, name: str) -> Any:
        try:
            return ALLOWED_GLOBALS[(module, name)]
        except KeyError:
            raise UnsafeFrame(
                f"frame references forbidden global {module}.{name}"
            ) from None


def restricted_loads(payload) -> Any:
    """Deserialize wire bytes (any bytes-like), allowing only the frame
    vocabulary."""
    return _RestrictedUnpickler(io.BytesIO(payload)).load()


def send_frame(sock: socket.socket, obj: Any,
               stats: "FrameStats | None" = None) -> int:
    """Serialize *obj* and write it as one frame (blocking); returns the
    wire bytes written (header included)."""
    payload = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    sock.sendall(_HDR.pack(len(payload)) + payload)
    nbytes = _HDR.size + len(payload)
    if stats is not None:
        stats.frames_out += 1
        stats.bytes_out += nbytes
        stats.flushes += 1
    return nbytes


def _recv_exact(sock: socket.socket, n: int) -> bytes:
    buf = bytearray()
    while len(buf) < n:
        chunk = sock.recv(n - len(buf))
        if not chunk:
            raise FrameClosed(
                f"connection closed mid-frame ({len(buf)}/{n} bytes)")
        buf.extend(chunk)
    return bytes(buf)


def recv_frame(sock: socket.socket,
               stats: "FrameStats | None" = None) -> Any:
    """Read one frame (blocking); raises :class:`FrameClosed` on EOF.

    Frames are deserialized through the allowlist unpickler — a hostile
    frame raises :class:`UnsafeFrame` rather than executing anything.
    """
    try:
        hdr = _recv_exact(sock, _HDR.size)
    except FrameClosed:
        raise
    (length,) = _HDR.unpack(hdr)
    if length > MAX_FRAME:
        raise ValueError(f"frame of {length} bytes exceeds limit")
    obj = restricted_loads(_recv_exact(sock, length))
    if stats is not None:
        stats.frames_in += 1
        stats.bytes_in += _HDR.size + length
    return obj


# ---------------------------------------------------------------------------
# fast path: same wire format, fewer copies
# ---------------------------------------------------------------------------

def _sendmsg_all(sock: socket.socket, buffers: list) -> None:
    """Write every buffer fully, scatter-gather where the OS allows.

    ``sendmsg`` may stop short (socket buffer full); the remainder is
    retried from the first unsent byte without re-copying — only the
    partially-sent buffer gets a narrowed memoryview.
    """
    bufs = [memoryview(b) for b in buffers if len(b)]
    while bufs:
        try:
            sent = sock.sendmsg(bufs)
        except AttributeError:  # platform without sendmsg
            for b in bufs:
                sock.sendall(b)
            return
        while sent:
            if sent >= len(bufs[0]):
                sent -= len(bufs[0])
                del bufs[0]
            else:
                bufs[0] = bufs[0][sent:]
                sent = 0


#: below this, concatenating header+payload beats scatter-gather setup
_SMALL_SEND = 16 * 1024


def send_frame_fast(sock: socket.socket, obj: Any,
                    stats: "FrameStats | None" = None) -> int:
    """Like :func:`send_frame` without the header+payload concatenation.

    The 4-byte header and the pickled payload go out as one
    scatter-gather ``sendmsg`` — for multi-megabyte state frames this
    skips a full extra copy of the payload. Small frames still use one
    ``sendall``: copying a few KB is cheaper than building an iovec.
    Returns the wire bytes written (header included).
    """
    payload = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    if len(payload) < _SMALL_SEND:
        sock.sendall(_HDR.pack(len(payload)) + payload)
    else:
        _sendmsg_all(sock, [_HDR.pack(len(payload)), payload])
    nbytes = _HDR.size + len(payload)
    if stats is not None:
        stats.frames_out += 1
        stats.bytes_out += nbytes
        stats.flushes += 1
    return nbytes


class FrameBatcher:
    """Opt-in coalescing of small frames into one ``sendmsg``.

    Control-heavy sequences (handshake, recvlist, the first state
    chunks) otherwise cost one syscall + one small TCP segment each.
    ``add`` queues the encoded frame; everything flushes together once
    ``limit`` bytes accumulate, or explicitly via :meth:`flush`. The
    receiver needs no changes — the stream is byte-identical to the
    frames sent one by one.
    """

    def __init__(self, sock: socket.socket, limit: int = 64 * 1024,
                 stats: "FrameStats | None" = None):
        self._sock = sock
        self._limit = limit
        self._pending: list = []
        self._nbytes = 0
        self.stats = stats

    def __len__(self) -> int:
        """Queued-but-unflushed frame count."""
        return len(self._pending) // 2

    def add(self, obj: Any) -> None:
        payload = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
        self._pending.append(_HDR.pack(len(payload)))
        self._pending.append(payload)
        self._nbytes += _HDR.size + len(payload)
        if self.stats is not None:
            self.stats.frames_out += 1
            self.stats.bytes_out += _HDR.size + len(payload)
        if self._nbytes >= self._limit:
            self.flush()

    def flush(self) -> None:
        if self._pending:
            _sendmsg_all(self._sock, self._pending)
            self._pending = []
            self._nbytes = 0
            if self.stats is not None:
                self.stats.flushes += 1


class FrameReader:
    """Frame parser over a reusable ``recv_into`` buffer.

    The legacy :func:`recv_frame` allocates a fresh bytearray per frame
    and copies it to bytes; this reader keeps one growable buffer,
    appends raw socket data into it, and deserializes each frame from a
    memoryview of that buffer — the only copy left is the unpickler's
    own. Same framing, same :data:`MAX_FRAME` guard, same allowlist
    unpickler.
    """

    def __init__(self, sock: socket.socket, bufsize: int = 64 * 1024,
                 stats: "FrameStats | None" = None):
        self._sock = sock
        self.stats = stats
        self._buf = bytearray(bufsize)
        # cached export of _buf; recreated only when the buffer grows
        # (mutating contents through a live export is fine, resizing is
        # not — growth releases and re-exports)
        self._mv = memoryview(self._buf)
        self._start = 0  # parse position
        self._end = 0    # filled bytes

    def _fill(self, need: int) -> None:
        """Block until ``need`` unread bytes are available from _start."""
        while self._end - self._start < need:
            if self._start + need > len(self._buf):
                unread = self._end - self._start
                if self._start:
                    # compact: move unread bytes to the front (no realloc)
                    self._buf[:unread] = self._buf[self._start:self._end]
                    self._start, self._end = 0, unread
                if need > len(self._buf):
                    self._mv.release()
                    self._buf.extend(
                        bytes(max(need, 2 * len(self._buf))
                              - len(self._buf)))
                    self._mv = memoryview(self._buf)
            with self._mv[self._end:] as window:
                n = self._sock.recv_into(window)
            if n == 0:
                have = self._end - self._start
                if have:
                    raise FrameClosed(
                        f"connection closed mid-frame ({have}/{need} bytes)")
                raise FrameClosed("connection closed")
            self._end += n

    def read_frame(self) -> Any:
        """Read one frame (blocking); :class:`FrameClosed` on EOF."""
        self._fill(_HDR.size)
        (length,) = _HDR.unpack_from(self._buf, self._start)
        if length > MAX_FRAME:
            raise ValueError(f"frame of {length} bytes exceeds limit")
        self._fill(_HDR.size + length)
        body_start = self._start + _HDR.size
        with self._mv[body_start:body_start + length] as body:
            obj = restricted_loads(body)
        self._start = body_start + length
        if self._start == self._end:
            self._start = self._end = 0
        if self.stats is not None:
            self.stats.frames_in += 1
            self.stats.bytes_in += _HDR.size + length
        return obj

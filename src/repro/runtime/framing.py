"""Length-prefixed message framing over stream sockets.

The multiprocess backend's wire format: a 4-byte big-endian length
followed by a pickled header/payload tuple. TCP gives the FIFO, reliable,
connection-oriented channel the protocols assume (paper Section 2.3 lists
TCP explicitly as a suitable substrate). Migration *state* payloads are
not pickled Python objects but opaque byte blobs produced by the
machine-independent codec — the pickle layer here plays the role PVM's
own wire encoding played, while heterogeneity of process state is handled
by :mod:`repro.codec`.

Deserialization is **restricted**: control frames are built from a small
closed vocabulary (tuples, dicts, strings, numbers, byte blobs), so
:func:`recv_frame` uses an allowlist unpickler that refuses to
reconstruct anything else. A peer that injects a frame naming any other
class — the classic ``__reduce__`` → ``os.system`` pickle gadget — gets
:class:`UnsafeFrame` instead of code execution. Application *data*
payloads travel inside frames too and are therefore limited to the same
plain-data vocabulary; structured process state crosses the wire as
opaque codec bytes, never as pickled objects.
"""

from __future__ import annotations

import io
import pickle
import socket
import struct
from typing import Any

__all__ = ["send_frame", "recv_frame", "FrameClosed", "UnsafeFrame",
           "restricted_loads", "ALLOWED_GLOBALS"]

_HDR = struct.Struct(">I")
#: refuse absurd frames (corrupt stream guard)
MAX_FRAME = 256 * 1024 * 1024

#: The complete vocabulary a wire frame may reference. Everything the mp
#: runtime sends is built from builtins plus these; anything else is an
#: attack or a bug, and both should fail loudly.
ALLOWED_GLOBALS: dict[tuple[str, str], Any] = {}


def _allow(module: str, name: str) -> None:
    import importlib
    obj = importlib.import_module(module)
    for part in name.split("."):
        obj = getattr(obj, part)
    ALLOWED_GLOBALS[(module, name)] = obj


# builtins that legitimate frames reference (pickle names a global for
# these when reconstructing containers and memoryview-backed bytes)
for _name in ("tuple", "list", "dict", "set", "frozenset", "bytes",
              "bytearray", "complex"):
    _allow("builtins", _name)


class FrameClosed(Exception):
    """The peer closed the connection (clean EOF between frames)."""


class UnsafeFrame(Exception):
    """A frame referenced a global outside the frame vocabulary."""


class _RestrictedUnpickler(pickle.Unpickler):
    def find_class(self, module: str, name: str) -> Any:
        try:
            return ALLOWED_GLOBALS[(module, name)]
        except KeyError:
            raise UnsafeFrame(
                f"frame references forbidden global {module}.{name}"
            ) from None


def restricted_loads(payload: bytes) -> Any:
    """Deserialize wire bytes, allowing only the frame vocabulary."""
    return _RestrictedUnpickler(io.BytesIO(payload)).load()


def send_frame(sock: socket.socket, obj: Any) -> None:
    """Serialize *obj* and write it as one frame (blocking)."""
    payload = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    sock.sendall(_HDR.pack(len(payload)) + payload)


def _recv_exact(sock: socket.socket, n: int) -> bytes:
    buf = bytearray()
    while len(buf) < n:
        chunk = sock.recv(n - len(buf))
        if not chunk:
            raise FrameClosed(
                f"connection closed mid-frame ({len(buf)}/{n} bytes)")
        buf.extend(chunk)
    return bytes(buf)


def recv_frame(sock: socket.socket) -> Any:
    """Read one frame (blocking); raises :class:`FrameClosed` on EOF.

    Frames are deserialized through the allowlist unpickler — a hostile
    frame raises :class:`UnsafeFrame` rather than executing anything.
    """
    try:
        hdr = _recv_exact(sock, _HDR.size)
    except FrameClosed:
        raise
    (length,) = _HDR.unpack(hdr)
    if length > MAX_FRAME:
        raise ValueError(f"frame of {length} bytes exceeds limit")
    return restricted_loads(_recv_exact(sock, length))

"""Related-work migration mechanisms (paper §7) as measurable baselines.

Each ``run_*_migration`` executes the common ring workload
(:mod:`repro.baselines.workload`) with one migration of rank 0 under a
different mechanism and returns comparable :class:`BaselineMetrics`:

* :func:`run_snow_migration` — the paper's protocol (O(degree)
  coordination, no blocking, no forwarding, no residual dependency);
* :func:`run_cocheck_migration` — coordinated checkpointing (O(N)
  coordination + markers, global blocking);
* :func:`run_broadcast_migration` — ChaRM/Dynamite location broadcast
  (O(N) control, sender-side delayed buffers);
* :func:`run_forwarding_migration` — MPVM/tmPVM message forwarding
  (cheap coordination, per-message forwarding tax, residual dependency —
  with an optional host-leaves failure demonstration).
"""

from repro.baselines.broadcast import run_broadcast_migration
from repro.baselines.chandy_lamport import GlobalSnapshot, Marker, SnapshotRecorder
from repro.baselines.cocheck import run_cocheck_migration
from repro.baselines.common import BaselineMetrics, RawPeer, ring_neighbours
from repro.baselines.forwarding import run_forwarding_migration
from repro.baselines.snow import run_snow_migration
from repro.baselines.workload import RingHarness

__all__ = [
    "BaselineMetrics",
    "GlobalSnapshot",
    "Marker",
    "RawPeer",
    "RingHarness",
    "SnapshotRecorder",
    "ring_neighbours",
    "run_broadcast_migration",
    "run_cocheck_migration",
    "run_forwarding_migration",
    "run_snow_migration",
]

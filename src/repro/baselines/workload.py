"""The common ring workload the migration baselines run.

Each of ``nprocs`` workers streams paced, sequence-numbered tokens to its
right neighbour and receives from its left; rank 0 "migrates" mid-run
under the mechanism being measured. The harness wires the ring channels,
spawns a coordinator, runs to completion and verifies that every worker
received its full, ordered stream (a baseline that loses or reorders
messages fails its own test).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.baselines.common import RawPeer, ring_neighbours
from repro.vm.ids import VmId
from repro.vm.messages import ControlEnvelope
from repro.vm.process import ProcessContext
from repro.vm.virtual_machine import VirtualMachine

__all__ = ["RingHarness", "WorkerHooks", "APP_TAG"]

#: tag of application tokens (baseline control uses other tags / payloads)
APP_TAG = 1


@dataclass
class WorkerHooks:
    """Callbacks a baseline installs into the ring workers.

    ``on_iteration(worker)`` runs at each loop top (where baselines check
    their out-of-band control); ``on_inband(worker, msg)`` lets a baseline
    consume in-band non-token payloads (markers etc.); ``on_finish``
    runs after the loop so mechanisms can settle obligations (e.g. flush
    delayed buffers) before the worker exits. All optional.
    """

    on_iteration: Callable[["RingHarness.Worker"], None] | None = None
    on_inband: Callable[["RingHarness.Worker", Any], bool] | None = None
    on_finish: Callable[["RingHarness.Worker"], None] | None = None


class RingHarness:
    """Builds the VM, workers and wiring for one baseline experiment."""

    @dataclass
    class Worker:
        rank: int
        ctx: ProcessContext
        peer: RawPeer
        harness: "RingHarness"
        received: list = field(default_factory=list)
        #: scratch space for baseline mechanisms
        scratch: dict = field(default_factory=dict)

        def recv_token(self):
            """Receive the next application token, routing other in-band
            payloads to the baseline hook."""
            while True:
                m = self.peer.recv()
                if m.tag == APP_TAG:
                    return m
                handled = False
                if self.harness.hooks.on_inband is not None:
                    handled = self.harness.hooks.on_inband(self, m)
                if not handled:
                    raise AssertionError(f"unhandled in-band payload {m!r}")

    def __init__(self, nprocs: int, iterations: int, pace: float = 0.002,
                 token_bytes: int = 2048, extra_hosts: int = 2):
        self.nprocs = nprocs
        self.iterations = iterations
        self.pace = pace
        self.token_bytes = token_bytes
        self.vm = VirtualMachine()
        for i in range(nprocs):
            self.vm.add_host(f"h{i}")
        for i in range(extra_hosts):
            self.vm.add_host(f"x{i}")
        self.hooks = WorkerHooks()
        self.workers: dict[int, RingHarness.Worker] = {}
        self._ctxs: list[ProcessContext] = []

    # -- construction -------------------------------------------------------
    def start(self) -> None:
        for r in range(self.nprocs):
            ctx = self.vm.spawn(f"h{r}", self._worker_main, r, name=f"w{r}")
            self._ctxs.append(ctx)
        self.vm.kernel.call_at(0.0005, self._wire)

    def _wire(self) -> None:
        chans = {}
        for r in range(self.nprocs):
            _, right = ring_neighbours(r, self.nprocs)
            key = frozenset((r, right))
            if key not in chans:
                chans[key] = self.vm.create_channel(
                    self._ctxs[r].vmid, self._ctxs[right].vmid)
        for r in range(self.nprocs):
            left, right = ring_neighbours(r, self.nprocs)
            self.workers[r].peer.wire(right, chans[frozenset((r, right))])
            self.workers[r].peer.wire(left, chans[frozenset((r, left))])

    def _worker_main(self, ctx: ProcessContext, rank: int) -> None:
        peer = RawPeer(ctx, rank)
        worker = RingHarness.Worker(rank=rank, ctx=ctx, peer=peer,
                                    harness=self)
        self.workers[rank] = worker
        ctx.kernel.sleep(0.001)  # wait for wiring
        left, right = ring_neighbours(rank, self.nprocs)
        for i in range(self.iterations):
            if self.hooks.on_iteration is not None:
                self.hooks.on_iteration(worker)
            peer.send(right, ("tok", rank, i), tag=APP_TAG,
                      nbytes=self.token_bytes)
            msg = worker.recv_token()
            worker.received.append(msg.body)
            if self.pace:
                ctx.compute(self.pace)
        # final control check so late mechanisms can finish cleanly
        if self.hooks.on_iteration is not None:
            self.hooks.on_iteration(worker)
        if self.hooks.on_finish is not None:
            self.hooks.on_finish(worker)

    # -- coordinator helpers --------------------------------------------------
    def spawn_coordinator(self, fn: Callable[..., None], *args: Any,
                          host: str = "x1") -> ProcessContext:
        return self.vm.spawn(host, fn, *args, name="coord", daemon=True)

    def control_to_worker(self, src: ProcessContext, rank: int,
                          msg: Any) -> None:
        src.route_control(self._ctxs[rank].vmid, msg)

    # -- verification -------------------------------------------------------
    def run(self, **kwargs: Any) -> None:
        self.vm.run(**kwargs)

    def verify_streams(self) -> None:
        """Every worker got its left neighbour's full stream, in order."""
        for r in range(self.nprocs):
            left, _ = ring_neighbours(r, self.nprocs)
            expected = [("tok", left, i) for i in range(self.iterations)]
            got = self.workers[r].received
            assert got == expected, (
                f"rank {r}: stream corrupted "
                f"(got {len(got)} messages, first diff at "
                f"{next((i for i, (a, b) in enumerate(zip(got, expected)) if a != b), '?')})")

    def worker_vmid(self, rank: int) -> VmId:
        return self._ctxs[rank].vmid

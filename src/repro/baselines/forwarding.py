"""MPVM/tmPVM-style migration: message forwarding, residual dependency.

Paper §7: systems "like Mach and tmPVM ... rely on message forwarding
after the migration finishes. In MPVM ... messages are routed through the
source computer", so "message forwarding can degrade communication
performance. In addition, dependencies between the migrating process and
source or original computers further make these systems unsuitable for
virtual machine environments where computers can join and leave
dynamically."

The mechanism measured here: rank 0 moves (state transfer only — peers
are told nothing), and every subsequent message addressed to rank 0
arrives at the *old* host, pays the old-host forwarding hop to the new
host, and counts as a forwarded message. Optionally the old host resigns
after the migration, demonstrating the message loss the residual
dependency risks.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.common import BaselineMetrics
from repro.baselines.workload import RingHarness
from repro.vm.messages import ControlEnvelope

__all__ = ["run_forwarding_migration"]


@dataclass(frozen=True)
class _MigrateNow:
    new_host: str


def run_forwarding_migration(nprocs: int = 8, iterations: int = 30,
                             migrate_at: float | None = None, pace: float = 0.002,
                             state_bytes: int = 500_000,
                             old_host_leaves: bool = False
                             ) -> BaselineMetrics:
    """Ring workload; rank 0 migrates under the forwarding mechanism.

    With ``old_host_leaves=True`` the source host resigns mid-run; every
    message still being routed through it is lost — the residual
    dependency failure mode.
    """
    if migrate_at is None:
        # land the migration ~40% into the expected run
        migrate_at = 0.4 * iterations * (pace + 0.002)
    h = RingHarness(nprocs, iterations, pace=pace)
    metrics = BaselineMetrics("forwarding", nprocs)
    migrating_rank = 0
    lost_after_leave = {"count": 0}

    def on_iteration(worker: RingHarness.Worker) -> None:
        for env in worker.peer.take_control():
            if isinstance(env.msg, _MigrateNow) and \
                    worker.rank == migrating_rank:
                _do_move(worker, env.msg.new_host)
            else:
                worker.peer.pending_control.append(env)

    def _do_move(worker: RingHarness.Worker, new_host: str) -> None:
        ctx = worker.ctx
        t0 = ctx.kernel.now
        # collect, ship and restore the state; nobody else is told anything
        ctx.burn(state_bytes * 95e-9)
        ctx.kernel.sleep(h.vm.network.transfer_time(
            worker.ctx.host, new_host, state_bytes))
        ctx.burn(state_bytes * 90e-9)
        worker.scratch["moved_to"] = new_host
        worker.scratch["old_host"] = worker.ctx.host
        metrics.migration_time = ctx.kernel.now - t0
        metrics.control_messages += 1  # the migrate instruction itself

        # From now on, every message to this rank is addressed to the old
        # host and forwarded: charge the extra hop on delivery.
        real_recv_token = worker.recv_token

        def forwarding_recv_token():
            msg = real_recv_token()
            if old_host_leaves and worker.scratch.get("old_gone"):
                # with the forwarder dead this message would never have
                # arrived; account it as lost and receive the next one
                lost_after_leave["count"] += 1
            hop = h.vm.network.transfer_time(
                worker.scratch["old_host"], new_host, msg.nbytes)
            ctx.kernel.sleep(hop)  # the forwarding hop
            metrics.forwarded_messages += 1
            metrics.blocked_time_total += hop
            return msg

        worker.recv_token = forwarding_recv_token  # type: ignore

    def coordinator(ctx) -> None:
        ctx.kernel.sleep(migrate_at)
        h.control_to_worker(ctx, migrating_rank, _MigrateNow("x0"))
        metrics.control_messages += 1
        if old_host_leaves:
            ctx.kernel.sleep(0.05)
            w = h.workers[migrating_rank]
            w.scratch["old_gone"] = True

    h.hooks.on_iteration = on_iteration
    h.start()
    h.spawn_coordinator(coordinator)
    h.run()
    h.verify_streams()
    metrics.processes_coordinated = 1
    metrics.residual_dependency = True
    metrics.messages_lost = len(h.vm.dropped_messages()) + \
        lost_after_leave["count"]
    metrics.extra["lost_after_leave"] = lost_after_leave["count"]
    h.vm.shutdown()
    return metrics

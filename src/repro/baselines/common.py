"""Shared substrate for the related-work baseline systems (paper §7).

The baselines (CoCheck-style coordinated checkpointing, ChaRM-style
location broadcast, MPVM-style message forwarding) are compared against
SNOW on a common workload: a ring of ``n`` processes streaming paced,
sequence-numbered messages to their right neighbour while rank 0 migrates.

They run on the *same* virtual machine substrate as the SNOW protocol —
real channels, daemons and signals — but with their own (simpler, and in
the ways §7 describes, worse) migration coordination. :class:`RawPeer`
gives them plain send/recv over pre-wired ring channels without any of
SNOW's migration machinery.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.core.messages import DataMessage
from repro.sim.kernel import TIMEOUT
from repro.util.errors import ProtocolError
from repro.vm.channel import Channel
from repro.vm.ids import Rank, VmId
from repro.vm.messages import ControlEnvelope, Envelope
from repro.vm.process import ProcessContext
from repro.vm.virtual_machine import VirtualMachine

__all__ = ["BaselineMetrics", "RawPeer", "build_ring_vm", "ring_neighbours"]


@dataclass
class BaselineMetrics:
    """What the ablation benches compare across migration mechanisms."""

    name: str
    nprocs: int
    #: migration-related control messages (signals, markers, broadcasts,
    #: forwarder traffic) — NOT application data
    control_messages: int = 0
    #: processes that had to participate in the migration
    processes_coordinated: int = 0
    #: total time application processes spent blocked/buffering because of
    #: the migration mechanism (beyond their normal waits)
    blocked_time_total: float = 0.0
    #: the source (or home) host must stay alive after migration
    residual_dependency: bool = False
    #: messages that took an extra forwarding hop
    forwarded_messages: int = 0
    #: wall (virtual) time from migration request to resumed execution
    migration_time: float = 0.0
    messages_lost: int = 0
    extra: dict[str, Any] = field(default_factory=dict)

    def row(self) -> tuple:
        return (self.name, self.nprocs, self.control_messages,
                self.processes_coordinated,
                f"{self.blocked_time_total:.4f}",
                "yes" if self.residual_dependency else "no",
                self.forwarded_messages)


def ring_neighbours(rank: Rank, n: int) -> tuple[Rank, Rank]:
    """(left, right) neighbours on the ring."""
    return ((rank - 1) % n, (rank + 1) % n)


def build_ring_vm(nprocs: int, extra_hosts: int = 2) -> VirtualMachine:
    """A homogeneous cluster with one host per process plus spares."""
    vm = VirtualMachine()
    for i in range(nprocs):
        vm.add_host(f"h{i}")
    for i in range(extra_hosts):
        vm.add_host(f"x{i}")
    return vm


class RawPeer:
    """Plain buffered send/recv over explicitly wired channels.

    No connection establishment, no migration awareness: exactly the
    substrate a baseline mechanism must extend to survive a migration.
    """

    def __init__(self, ctx: ProcessContext, rank: Rank):
        self.ctx = ctx
        self.rank = rank
        ctx.rank = rank
        #: rank -> channel, wired by the experiment harness
        self.channels: dict[Rank, Channel] = {}
        self._buffer: list[DataMessage] = []
        #: control envelopes that recv() set aside (handled by callers)
        self.pending_control: list[ControlEnvelope] = []

    def wire(self, rank: Rank, chan: Channel) -> None:
        self.channels[rank] = chan

    def send(self, dest: Rank, body: Any, tag: int = 0,
             nbytes: int = 64) -> None:
        chan = self.channels.get(dest)
        if chan is None:
            raise ProtocolError(f"rank {self.rank} has no channel to {dest}")
        msg = DataMessage(src=self.rank, tag=tag, body=body, nbytes=nbytes,
                          sent_at=self.ctx.kernel.now)
        chan.send(self.ctx, msg, nbytes)

    def try_recv(self, src: Rank | None = None, tag: int | None = None,
                 timeout: float | None = None) -> DataMessage | None:
        """Receive the next matching data message; control is set aside."""
        for i, m in enumerate(self._buffer):
            if m.matches(src, tag):
                return self._buffer.pop(i)
        while True:
            item = self.ctx.next_message(timeout=timeout)
            if item is TIMEOUT:
                return None
            if isinstance(item, ControlEnvelope):
                self.pending_control.append(item)
                continue
            if isinstance(item, Envelope):
                payload = item.payload
                if isinstance(payload, DataMessage):
                    if payload.matches(src, tag):
                        return payload
                    self._buffer.append(payload)
                    continue
                # non-data channel payloads are the baseline's own control
                self.pending_control.append(item)
                continue
            raise ProtocolError(f"unexpected mailbox item {item!r}")

    def recv(self, src: Rank | None = None, tag: int | None = None
             ) -> DataMessage:
        msg = self.try_recv(src, tag)
        assert msg is not None
        return msg

    def take_control(self) -> list:
        out = self.pending_control
        self.pending_control = []
        return out

"""CoCheck-style migration: coordinated checkpointing (paper §7).

CoCheck reuses a fault-tolerance mechanism for migration: to move one
process, *every* process takes a globally consistent checkpoint
(Chandy-Lamport flush), application communication blocks while the
checkpoint and the restart are in progress, and the computation resumes
from the stored state on the new machine.

The two §7 criticisms this reproduction measures:

* **coordination of all processes** directly or indirectly connected to
  the migrating process — the whole computation: O(N) control broadcasts
  plus one marker per directed channel;
* **blocking of communication** among all of them for the duration.

A process learns of the checkpoint either from the coordinator's
out-of-band broadcast (at its next control check) or from an in-band
marker (while blocked in a receive) — the marker-triggered path is exactly
Chandy-Lamport's "record on first marker" rule and is what keeps the
mechanism deadlock-free.

Simplification (documented in DESIGN.md): the migrating process is not
literally killed and re-executed — the state collect / transfer / restore
costs are charged and communication blocks exactly as the mechanism
requires, which is what the ablation compares.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.chandy_lamport import GlobalSnapshot, Marker, SnapshotRecorder
from repro.baselines.common import BaselineMetrics
from repro.baselines.workload import RingHarness
from repro.vm.messages import ControlEnvelope

__all__ = ["run_cocheck_migration"]

#: per-byte CPU cost of writing / restoring a checkpoint
_CKPT_SAVE = 50e-9
_CKPT_RESTORE = 90e-9


@dataclass(frozen=True)
class _Checkpoint:
    checkpoint_id: int


@dataclass(frozen=True)
class _Ack:
    rank: int


@dataclass(frozen=True)
class _Resume:
    new_host: str


def run_cocheck_migration(nprocs: int = 8, iterations: int = 30,
                          migrate_at: float | None = None, pace: float = 0.002,
                          state_bytes: int = 500_000) -> BaselineMetrics:
    """Run the ring workload with one CoCheck-style migration of rank 0."""
    if migrate_at is None:
        # land the migration ~40% into the expected run
        migrate_at = 0.4 * iterations * (pace + 0.002)
    h = RingHarness(nprocs, iterations, pace=pace)
    metrics = BaselineMetrics("cocheck", nprocs)
    snapshot = GlobalSnapshot(snapshot_id=1)
    coord = {}

    def ensure_checkpoint(worker: RingHarness.Worker,
                          trigger: Marker | None = None) -> None:
        rec: SnapshotRecorder | None = worker.scratch.get("rec")
        if rec is not None:
            if trigger is not None:
                rec.on_marker(trigger)
            return
        ctx = worker.ctx
        t0 = ctx.kernel.now
        rec = SnapshotRecorder(
            worker.peer, lambda: len(worker.received), snapshot)
        worker.scratch["rec"] = rec
        rec.start()
        if trigger is not None:
            rec.on_marker(trigger)
        # flush every channel; application data pulled meanwhile is kept
        # for the application
        while not rec.done:
            m = worker.peer.recv()
            if isinstance(m.body, Marker):
                rec.on_marker(m.body)
            else:
                rec.on_message(m)
                worker.peer._buffer.append(m)
        # every process writes its checkpoint
        ctx.burn(state_bytes * _CKPT_SAVE)
        ctx.route_control(coord["vmid"], _Ack(worker.rank))
        metrics.control_messages += 1
        # communication blocks until the coordinator resumes the system
        while True:
            item = ctx.next_message()
            if isinstance(item, ControlEnvelope):
                if isinstance(item.msg, _Resume):
                    break
                worker.peer.pending_control.append(item)
                continue
            worker.peer._buffer.append(item.payload)
        metrics.blocked_time_total += ctx.kernel.now - t0

    def on_iteration(worker: RingHarness.Worker) -> None:
        for env in worker.peer.take_control():
            if isinstance(env.msg, _Checkpoint):
                ensure_checkpoint(worker)
            else:
                worker.peer.pending_control.append(env)

    def on_inband(worker: RingHarness.Worker, m) -> bool:
        if isinstance(m.body, Marker):
            ensure_checkpoint(worker, trigger=m.body)
            return True
        return False

    h.hooks.on_iteration = on_iteration
    h.hooks.on_inband = on_inband

    def coordinator(ctx) -> None:
        coord["vmid"] = ctx.vmid
        ctx.kernel.sleep(migrate_at)
        t0 = ctx.kernel.now
        for r in range(nprocs):
            h.control_to_worker(ctx, r, _Checkpoint(1))
            metrics.control_messages += 1
        acked = 0
        while acked < nprocs:
            item = ctx.next_message()
            if isinstance(item, ControlEnvelope) and \
                    isinstance(item.msg, _Ack):
                acked += 1
        # restart the migrating process from its checkpoint on the new
        # host: transfer the stored state, then restore it
        ctx.kernel.sleep(h.vm.network.transfer_time("h0", "x0", state_bytes))
        ctx.burn(state_bytes * _CKPT_RESTORE)
        for r in range(nprocs):
            h.control_to_worker(ctx, r, _Resume("x0"))
            metrics.control_messages += 1
        metrics.migration_time = ctx.kernel.now - t0

    h.start()
    h.spawn_coordinator(coordinator)
    h.run()
    h.verify_streams()
    metrics.processes_coordinated = nprocs
    metrics.control_messages += snapshot.markers_sent
    metrics.residual_dependency = False
    metrics.messages_lost = len(h.vm.dropped_messages())
    metrics.extra["markers"] = snapshot.markers_sent
    h.vm.shutdown()
    return metrics

"""ChaRM/Dynamite-style migration: location broadcast + blocked senders.

Paper §7: "Dynamite broadcasts new location information of the migrating
process to every host in the virtual machine, while ChaRM broadcasts the
new location to every other process in a distributed application. Both
systems broadcast the information before the migration starts. ChaRM also
broadcasts a signal message again before the migration finishes", and
senders "store messages in a delayed message buffer if the receiver is
migrating", retransmitting after the manager's notification.

Measured costs: 2N broadcast control messages, N processes coordinated,
and the buffering delay experienced by senders whose messages to the
migrating rank sat in the delayed buffer.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.common import BaselineMetrics
from repro.baselines.workload import APP_TAG, RingHarness
from repro.vm.messages import ControlEnvelope

__all__ = ["run_broadcast_migration"]


@dataclass(frozen=True)
class _MigrationStarting:
    rank: int
    new_host: str


@dataclass(frozen=True)
class _MigrationDone:
    rank: int


def run_broadcast_migration(nprocs: int = 8, iterations: int = 30,
                            migrate_at: float | None = None, pace: float = 0.002,
                            state_bytes: int = 500_000) -> BaselineMetrics:
    """Ring workload; rank 0 migrates under the broadcast mechanism."""
    if migrate_at is None:
        # land the migration ~40% into the expected run
        migrate_at = 0.4 * iterations * (pace + 0.002)
    h = RingHarness(nprocs, iterations, pace=pace)
    metrics = BaselineMetrics("broadcast", nprocs)
    migrating_rank = 0

    # Patch the workers' sends: while the migration is announced and not
    # done, messages addressed to the migrating rank go to the delayed
    # buffer instead of the wire.
    def on_iteration(worker: RingHarness.Worker) -> None:
        peer = worker.peer
        for env in peer.take_control():
            msg = env.msg
            if isinstance(msg, _MigrationStarting):
                worker.scratch["holding"] = True
                metrics.processes_coordinated += 1
                _install_holding_send(worker)
                if worker.rank == migrating_rank:
                    # the migrating process itself is frozen for the move
                    _pause_until_done(worker)
            elif isinstance(msg, _MigrationDone):
                worker.scratch["holding"] = False
                # retransmit the delayed messages, preserving order
                delayed = worker.scratch.pop("delayed", [])
                for (dest, body, tag, nbytes, held_at) in delayed:
                    worker.scratch["real_send"](dest, body, tag=tag,
                                                nbytes=nbytes)
                    metrics.blocked_time_total += \
                        worker.ctx.kernel.now - held_at
                    metrics.extra["retransmitted"] = \
                        metrics.extra.get("retransmitted", 0) + 1
            else:
                peer.pending_control.append(env)

    def _pause_until_done(worker: RingHarness.Worker) -> None:
        ctx = worker.ctx
        t0 = ctx.kernel.now
        while True:
            item = ctx.next_message()
            if isinstance(item, ControlEnvelope):
                if isinstance(item.msg, _MigrationDone):
                    worker.scratch["holding"] = False
                    break
                worker.peer.pending_control.append(item)
                continue
            worker.peer._buffer.append(item.payload)
        metrics.blocked_time_total += ctx.kernel.now - t0

    def _install_holding_send(worker: RingHarness.Worker) -> None:
        if "real_send" in worker.scratch:
            return
        peer = worker.peer
        real_send = peer.send
        worker.scratch["real_send"] = real_send

        def holding_send(dest, body, tag=0, nbytes=64):
            if worker.scratch.get("holding") and dest == migrating_rank \
                    and worker.rank != migrating_rank:
                worker.scratch.setdefault("delayed", []).append(
                    (dest, body, tag, nbytes, worker.ctx.kernel.now))
                return
            real_send(dest, body, tag=tag, nbytes=nbytes)

        peer.send = holding_send  # type: ignore[method-assign]

    def on_finish(worker: RingHarness.Worker) -> None:
        # a sender must not exit with messages still in its delayed
        # buffer: wait for the migration-done broadcast and flush
        while worker.scratch.get("delayed"):
            item = worker.ctx.next_message()
            if isinstance(item, ControlEnvelope):
                worker.peer.pending_control.append(item)
                on_iteration(worker)
            else:
                worker.peer._buffer.append(item.payload)

    h.hooks.on_iteration = on_iteration
    h.hooks.on_finish = on_finish

    def coordinator(ctx) -> None:
        ctx.kernel.sleep(migrate_at)
        t0 = ctx.kernel.now
        # broadcast #1: new location, before the migration starts
        for r in range(nprocs):
            h.control_to_worker(ctx, r, _MigrationStarting(migrating_rank,
                                                           "x0"))
            metrics.control_messages += 1
        # the move itself: collect, transfer, restore
        ctx.burn(state_bytes * 95e-9)
        ctx.kernel.sleep(h.vm.network.transfer_time("h0", "x0", state_bytes))
        ctx.burn(state_bytes * 90e-9)
        # broadcast #2: migration finished, flush delayed buffers
        for r in range(nprocs):
            h.control_to_worker(ctx, r, _MigrationDone(migrating_rank))
            metrics.control_messages += 1
        metrics.migration_time = ctx.kernel.now - t0

    h.start()
    h.spawn_coordinator(coordinator)
    h.run()
    h.verify_streams()
    metrics.residual_dependency = False
    metrics.messages_lost = len(h.vm.dropped_messages())
    h.vm.shutdown()
    return metrics

"""SNOW metrics on the baseline workload, for the §7 comparison.

Runs the same ring workload as the baselines, but under the full paper
protocol with a real migration, and extracts the comparable metrics from
the trace:

* control messages = disconnection signals + peer_migrating +
  end_of_message + the five scheduler RPC legs + 2 per scheduler consult
  + rejected connection requests;
* processes coordinated = the migrating process's *connected peers* (its
  ring degree — NOT all N);
* blocked time = peers' time inside migration-induced coordination.
"""

from __future__ import annotations

from repro.baselines.common import BaselineMetrics
from repro.core.launch import Application
from repro.vm.virtual_machine import VirtualMachine

__all__ = ["run_snow_migration"]


def run_snow_migration(nprocs: int = 8, iterations: int = 30,
                       migrate_at: float | None = None, pace: float = 0.002,
                       token_bytes: int = 2048) -> BaselineMetrics:
    """Ring workload under the SNOW protocol with one migration of rank 0."""
    if migrate_at is None:
        # land the migration ~40% into the expected run
        migrate_at = 0.4 * iterations * (pace + 0.002)
    vm = VirtualMachine()
    for i in range(nprocs):
        vm.add_host(f"h{i}")
    vm.add_host("x0")
    vm.add_host("x1")
    received: dict[int, list] = {}

    def program(api, state):
        right = (api.rank + 1) % api.size
        left = (api.rank - 1) % api.size
        i = state.get("i", 0)
        got = state.setdefault("got", [])
        while i < iterations:
            api.send(right, ("tok", api.rank, i), tag=1, nbytes=token_bytes)
            got.append(api.recv(src=left, tag=1).body)
            i += 1
            state["i"] = i
            if pace:
                api.compute(pace)
            api.poll_migration(state)
        received[api.rank] = got

    app = Application(vm, program, placement=[f"h{i}" for i in range(nprocs)],
                      scheduler_host="x1")
    app.start()
    app.migrate_at(migrate_at, rank=0, dest_host="x0")
    app.run()

    # verify the streams like the baselines do
    for r in range(nprocs):
        left = (r - 1) % nprocs
        assert received[r] == [("tok", left, i) for i in range(iterations)], \
            f"rank {r} stream corrupted"
    assert len(app.migrations) == 1 and app.migrations[0].completed

    trace = vm.trace
    rec = app.migrations[0]
    t0, t1 = rec.t_start, rec.t_committed
    metrics = BaselineMetrics("snow", nprocs)

    coordinated = trace.filter(kind="peer_coordinated", actor="p0")
    drains = trace.filter(kind="drain_peer_done", actor="p0")
    signals = trace.filter(kind="signal_sent", actor="p0", t0=t0, t1=t1)
    consults = trace.filter(kind="scheduler_consult", t0=t0, t1=t1, dest=0)
    rejected = trace.filter(kind="conn_req_rejected", t0=t0, t1=t1)
    metrics.processes_coordinated = len(coordinated)
    metrics.control_messages = (
        len(signals)                # disconnection signals
        + len(coordinated)          # peer_migrating messages
        + len(drains)               # end_of_message replies
        + 5                         # migration_start/new_process/
                                    # restore_complete/pl_snapshot/commit
        + 2 * len(consults)         # lookup request + reply
        + len(rejected))            # conn_nacks from the migrating process
    metrics.migration_time = rec.t_restored - rec.t_start

    # peers' blocked time: from receiving the disconnection signal to
    # finishing their coordination (usually a few network round-trips)
    blocked = 0.0
    for ev in trace.filter(kind="peer_coordination_done"):
        sig = [s for s in trace.filter(kind="signal_arrived",
                                       actor=ev.actor, signal="SIG_DISCONNECT")
               if s.time <= ev.time]
        if sig:
            blocked += ev.time - sig[-1].time
    metrics.blocked_time_total = blocked
    metrics.residual_dependency = False
    metrics.forwarded_messages = 0
    metrics.messages_lost = len(vm.dropped_messages())
    metrics.extra["captured_in_transit"] = len(
        trace.filter(kind="captured_in_transit"))
    vm.shutdown()
    return metrics

"""The Chandy-Lamport distributed snapshot algorithm.

The coordination inside the paper's migrate() ("based on the work of
Chandy and Lamport [28]") and the foundation of the CoCheck baseline
(coordinated checkpointing). Implemented in full over the VM substrate:

* an initiator records its local state and sends a *marker* on every
  outgoing channel;
* on first marker receipt a process records its state, marks the arrival
  channel empty, and sends markers on all its outgoing channels;
* messages arriving on a channel after the local snapshot but before that
  channel's marker are recorded as the channel's in-flight state.

The classic correctness property — conservation of a global quantity
(tokens) across process states plus channel states — is what the tests
check.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.core.messages import DataMessage
from repro.baselines.common import RawPeer
from repro.vm.ids import Rank

__all__ = ["Marker", "SnapshotRecorder", "GlobalSnapshot"]


@dataclass(frozen=True)
class Marker:
    """The snapshot marker (travels in-band on data channels)."""

    snapshot_id: int
    src_rank: Rank
    protocol_control = True


@dataclass
class GlobalSnapshot:
    """Assembled result: per-process states and per-channel contents."""

    snapshot_id: int
    process_states: dict[Rank, Any] = field(default_factory=dict)
    channel_states: dict[tuple[Rank, Rank], list] = field(default_factory=dict)
    #: markers sent in total (the coordination cost)
    markers_sent: int = 0

    @property
    def complete(self) -> bool:
        return bool(self.process_states)

    def in_flight_count(self) -> int:
        return sum(len(v) for v in self.channel_states.values())


class SnapshotRecorder:
    """Per-process snapshot logic, embedded into a :class:`RawPeer` app.

    The application drives it: call :meth:`start` to initiate, feed every
    received marker to :meth:`on_marker` and every data message to
    :meth:`on_message`; :meth:`done` reports local completion. The
    harness merges local recordings into a :class:`GlobalSnapshot`.
    """

    def __init__(self, peer: RawPeer, state_fn: Callable[[], Any],
                 sink: GlobalSnapshot):
        self.peer = peer
        self.state_fn = state_fn
        self.sink = sink
        self.recording = False
        self.recorded = False
        #: channels (by src rank) whose marker has not arrived yet
        self.open_channels: set[Rank] = set()
        self._channel_log: dict[Rank, list] = {}

    def _record_local(self) -> None:
        self.recorded = True
        self.recording = True
        self.sink.process_states[self.peer.rank] = self.state_fn()
        self.open_channels = set(self.peer.channels)
        self._channel_log = {r: [] for r in self.open_channels}
        for rank in sorted(self.peer.channels):
            self.peer.send(rank, Marker(self.sink.snapshot_id,
                                        self.peer.rank),
                           tag=-1, nbytes=16)
            self.sink.markers_sent += 1

    def start(self) -> None:
        """Initiate the snapshot at this process."""
        if not self.recorded:
            self._record_local()

    def on_marker(self, marker: Marker) -> None:
        src = marker.src_rank
        if not self.recorded:
            # first marker: record state; the arrival channel is empty
            self._record_local()
            self.open_channels.discard(src)
            self.sink.channel_states[(src, self.peer.rank)] = []
            return
        if src in self.open_channels:
            self.open_channels.discard(src)
            self.sink.channel_states[(src, self.peer.rank)] = \
                self._channel_log.pop(src, [])

    def on_message(self, msg: DataMessage) -> None:
        """A data message passed through while the snapshot is open."""
        if self.recorded and msg.src in self.open_channels:
            self._channel_log[msg.src].append(msg.body)

    @property
    def done(self) -> bool:
        return self.recorded and not self.open_channels

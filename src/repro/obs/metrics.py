"""The metrics registry: counters, gauges, fixed-bucket histograms.

Built for hot paths: recording into an already-created instrument is an
attribute increment (plus a bisect for histograms); instrument *lookup*
is the only dict access, so call sites create their instruments once and
keep the reference. There is deliberately no locking on record — every
instrument in this codebase has a single writer (one protocol thread, or
one reader thread), while creation and snapshotting go through the
registry lock.

Snapshots are plain data (lists of dicts), safe for the mp runtime's
allowlist unpickler, and re-mergeable: the registry process folds every
worker's final snapshot into one cluster-wide view with
:meth:`MetricsRegistry.merge_snapshot`.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Any, Iterable

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry",
           "POW2_BUCKETS", "TIME_BUCKETS_S"]

#: Default histogram bounds for sizes/lengths: powers of two, 1 .. 1 MiB.
POW2_BUCKETS: tuple[float, ...] = tuple(2 ** i for i in range(0, 21))

#: Default histogram bounds for durations in seconds: 1 µs .. 100 s.
TIME_BUCKETS_S: tuple[float, ...] = tuple(
    m * 10.0 ** e for e in range(-6, 2) for m in (1.0, 2.5, 5.0))


class Counter:
    """A monotonically increasing count (messages, bytes, retries)."""

    __slots__ = ("name", "labels", "value")

    kind = "counter"

    def __init__(self, name: str, labels: dict[str, Any]):
        self.name = name
        self.labels = labels
        self.value = 0

    def inc(self, amount: int | float = 1) -> None:
        self.value += amount

    def as_dict(self) -> dict:
        return {"type": "counter", "name": self.name, "labels": self.labels,
                "value": self.value}


class Gauge:
    """A point-in-time level (queue depth, live links)."""

    __slots__ = ("name", "labels", "value")

    kind = "gauge"

    def __init__(self, name: str, labels: dict[str, Any]):
        self.name = name
        self.labels = labels
        self.value = 0

    def set(self, value: int | float) -> None:
        self.value = value

    def inc(self, amount: int | float = 1) -> None:
        self.value += amount

    def dec(self, amount: int | float = 1) -> None:
        self.value -= amount

    def as_dict(self) -> dict:
        return {"type": "gauge", "name": self.name, "labels": self.labels,
                "value": self.value}


class Histogram:
    """Fixed-bucket distribution (scan lengths, chunk latencies).

    ``bounds`` are the inclusive upper edges of each bucket; values above
    the last bound land in the implicit overflow bucket. Recording is a
    ``bisect`` into the precomputed bounds plus three attribute updates —
    no allocation, no percentile math until :meth:`as_dict`.
    """

    __slots__ = ("name", "labels", "bounds", "counts", "count", "total",
                 "vmin", "vmax")

    kind = "histogram"

    def __init__(self, name: str, labels: dict[str, Any],
                 bounds: Iterable[float] = POW2_BUCKETS):
        self.name = name
        self.labels = labels
        self.bounds = tuple(bounds)
        if list(self.bounds) != sorted(self.bounds) or not self.bounds:
            raise ValueError(f"histogram bounds must be sorted, non-empty: "
                             f"{self.bounds!r}")
        self.counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.vmin = float("inf")
        self.vmax = float("-inf")

    def record(self, value: float) -> None:
        self.counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        if value < self.vmin:
            self.vmin = value
        if value > self.vmax:
            self.vmax = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Upper bucket edge containing the q-quantile (0 < q <= 1)."""
        if not self.count:
            return 0.0
        target = q * self.count
        seen = 0
        for i, c in enumerate(self.counts):
            seen += c
            if seen >= target:
                return (self.bounds[i] if i < len(self.bounds)
                        else self.vmax)
        return self.vmax

    def as_dict(self) -> dict:
        return {"type": "histogram", "name": self.name, "labels": self.labels,
                "bounds": list(self.bounds), "counts": list(self.counts),
                "count": self.count, "total": self.total,
                "min": self.vmin if self.count else None,
                "max": self.vmax if self.count else None}


def _key(name: str, labels: dict[str, Any]) -> tuple:
    return (name, tuple(sorted(labels.items())))


class MetricsRegistry:
    """Factory and store for named, labelled instruments.

    ``registry.counter("mp.msgs_sent", rank=3)`` returns the same
    :class:`Counter` every call, so hot paths hoist the lookup::

        c = registry.counter("mp.bytes_out", rank=rank)
        ...
        c.inc(nbytes)        # the hot path touches only the instrument
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: dict[tuple, Any] = {}
        self._gauge_stamps: dict[tuple, int] = {}

    def _get(self, cls, name: str, labels: dict[str, Any], **kwargs) -> Any:
        key = _key(name, labels)
        with self._lock:
            inst = self._instruments.get(key)
            if inst is None:
                inst = self._instruments[key] = cls(name, labels, **kwargs)
            elif type(inst) is not cls:
                raise TypeError(
                    f"{name} already registered as {type(inst).__name__}")
            return inst

    def counter(self, name: str, **labels: Any) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(self, name: str, bounds: Iterable[float] = POW2_BUCKETS,
                  **labels: Any) -> Histogram:
        return self._get(Histogram, name, labels, bounds=bounds)

    # -- read side ---------------------------------------------------------
    def snapshot(self) -> list[dict]:
        """Plain-data dump of every instrument (stable order)."""
        with self._lock:
            insts = sorted(self._instruments.items(), key=lambda kv: kv[0])
        return [inst.as_dict() for _, inst in insts]

    def merge_snapshot(self, snapshot: list[dict], stamp: int = 0) -> None:
        """Fold another registry's snapshot into this one.

        Counters and histogram buckets add. Gauges are resolved
        deterministically, independent of the order snapshots arrive in:
        each merged gauge remembers the ``stamp`` it was last written
        with, a higher stamp replaces a lower one, and ties keep the
        larger value (a documented max — so two stamp-0 merges commute).
        Callers pass a stamp that encodes causal freshness; the mp
        collector uses the worker's incarnation number, so ``p1.m1``'s
        final levels beat ``p1``'s no matter which snapshot lands first.
        """
        for rec in snapshot:
            labels = dict(rec["labels"])
            if rec["type"] == "counter":
                self.counter(rec["name"], **labels).inc(rec["value"])
            elif rec["type"] == "gauge":
                g = self.gauge(rec["name"], **labels)
                key = _key(rec["name"], labels)
                prev = self._gauge_stamps.get(key)
                if (prev is None or stamp > prev
                        or (stamp == prev and rec["value"] > g.value)):
                    g.set(rec["value"])
                    self._gauge_stamps[key] = stamp
            elif rec["type"] == "histogram":
                h = self.histogram(rec["name"], bounds=rec["bounds"],
                                   **labels)
                if list(h.bounds) != list(rec["bounds"]):
                    raise ValueError(
                        f"histogram {rec['name']} bucket mismatch")
                for i, c in enumerate(rec["counts"]):
                    h.counts[i] += c
                h.count += rec["count"]
                h.total += rec["total"]
                if rec["count"]:
                    h.vmin = min(h.vmin, rec["min"])
                    h.vmax = max(h.vmax, rec["max"])
            else:
                raise ValueError(f"unknown instrument type {rec['type']!r}")

    def value(self, name: str, **labels: Any) -> Any:
        """Current value of a counter/gauge (0 if never created)."""
        inst = self._instruments.get(_key(name, labels))
        return 0 if inst is None else inst.value

    def find(self, name: str) -> list[Any]:
        """Every instrument registered under *name*, any labels."""
        with self._lock:
            return [inst for (n, _), inst in sorted(self._instruments.items())
                    if n == name]

    def sum(self, name: str) -> float:
        """Sum of a counter family across all label sets."""
        return sum(inst.value for inst in self.find(name))

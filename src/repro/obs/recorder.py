"""Span/event recording interfaces shared by both runtimes.

A *recorder* accepts ``event(kind, **fields)`` calls and hands out
:class:`Span` context managers for the migration phases. Three
implementations:

* :class:`NullRecorder` — the disabled default: every operation is a
  no-op and ``enabled`` is ``False`` so hot paths can skip even argument
  construction;
* :class:`TraceRecorder` — the simulator backend: events go into the
  existing :class:`repro.sim.trace.Trace`, which stamps the kernel's
  *virtual* clock; spans become paired ``span_start`` / ``span_end``
  trace events with the frozen phase names, so sim traces and mp JSONL
  artifacts speak the same vocabulary;
* :class:`BufferRecorder` — the mp backend: events are appended to an
  in-process buffer with wall-clock timestamps and flushed in batches by
  the owner (:mod:`repro.obs.collector` ships them over the control
  channel).
"""

from __future__ import annotations

import time
from typing import Any, Callable

from repro.obs.events import EVENT_KINDS, PHASES

__all__ = ["Recorder", "NullRecorder", "Span", "TraceRecorder",
           "BufferRecorder"]


class Span:
    """One phase of the migration lifecycle, as a context manager.

    Records ``span_start`` on entry and ``span_end`` (with ``seconds``)
    on exit; :meth:`close` allows explicit ends where ``with`` nesting
    does not match the control flow (e.g. a span that ends inside an
    exception unwinding the worker).
    """

    __slots__ = ("_rec", "phase", "fields", "t0", "closed")

    def __init__(self, rec: "Recorder", phase: str, fields: dict[str, Any]):
        if phase not in PHASES:
            raise ValueError(f"unknown phase {phase!r}")
        self._rec = rec
        self.phase = phase
        self.fields = fields
        self.t0 = rec.now()
        self.closed = False
        rec.event("span_start", phase=phase, **fields)

    def close(self, **extra: Any) -> float:
        """End the span; returns its duration in the recorder's clock."""
        if self.closed:
            return 0.0
        self.closed = True
        seconds = self._rec.now() - self.t0
        self._rec.event("span_end", phase=self.phase, seconds=seconds,
                        **self.fields, **extra)
        return seconds

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


class _NullSpan:
    __slots__ = ()

    phase = ""
    t0 = 0.0
    closed = True

    def close(self, **extra: Any) -> float:
        return 0.0

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: Any) -> None:
        return None


_NULL_SPAN = _NullSpan()


class Recorder:
    """Interface: subclasses implement :meth:`now` and :meth:`event`."""

    enabled = True

    def now(self) -> float:
        raise NotImplementedError

    def event(self, kind: str, **fields: Any) -> None:
        raise NotImplementedError

    def span(self, phase: str, **fields: Any) -> Span:
        return Span(self, phase, fields)


class NullRecorder(Recorder):
    """Observability off: every call is a no-op."""

    enabled = False

    def now(self) -> float:
        return 0.0

    def event(self, kind: str, **fields: Any) -> None:
        return None

    def span(self, phase: str, **fields: Any) -> Span:
        if phase not in PHASES:
            raise ValueError(f"unknown phase {phase!r}")
        return _NULL_SPAN  # type: ignore[return-value]


class TraceRecorder(Recorder):
    """Feed the simulator's :class:`~repro.sim.trace.Trace`.

    The trace stamps its own clock (the kernel's virtual time); *actor*
    is bound at construction like every other trace call site.
    """

    def __init__(self, trace, actor: str):
        self.trace = trace
        self.actor = actor

    def now(self) -> float:
        clock = self.trace._clock
        return clock.now if clock is not None else 0.0

    def event(self, kind: str, **fields: Any) -> None:
        if kind not in EVENT_KINDS:
            raise ValueError(f"unknown obs event kind {kind!r}")
        self.trace.record(self.actor, kind, **fields)


class BufferRecorder(Recorder):
    """Buffer events with wall-clock timestamps; the owner flushes.

    Events are plain tuples ``(ts, kind, fields)`` — safe for the mp
    wire's allowlist unpickler. ``on_full`` is invoked (with the
    recorder) once ``flush_every`` events accumulate; sampling of
    per-message events is the *caller's* job via :meth:`sampled` so the
    common case (sampling off) costs one integer compare.
    """

    def __init__(self, actor: str, flush_every: int = 512,
                 on_full: Callable[["BufferRecorder"], None] | None = None,
                 clock: Callable[[], float] = time.time):
        self.actor = actor
        self.buffer: list[tuple[float, str, dict]] = []
        self.flush_every = flush_every
        self.on_full = on_full
        self._clock = clock

    def now(self) -> float:
        return self._clock()

    def event(self, kind: str, **fields: Any) -> None:
        if kind not in EVENT_KINDS:
            raise ValueError(f"unknown obs event kind {kind!r}")
        self.buffer.append((self._clock(), kind, fields))
        if len(self.buffer) >= self.flush_every and self.on_full is not None:
            self.on_full(self)

    def drain(self) -> list[tuple[float, str, dict]]:
        """Take the buffered events (oldest first)."""
        out, self.buffer = self.buffer, []
        return out

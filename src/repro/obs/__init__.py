"""Unified observability: metrics, migration-phase spans, event collection.

The paper evaluates its protocols with XPVM space-time views and
per-phase migration cost breakdowns (Figs. 10-13, Tables 1-2). The
simulator reproduces that through :mod:`repro.sim.trace`; this package
extends the same discipline to the *real* multiprocess runtime and puts
both behind one vocabulary:

* :mod:`repro.obs.metrics` — a registry of counters, gauges and
  fixed-bucket histograms, cheap enough for hot paths (one guarded
  attribute increment when enabled, nothing when not);
* :mod:`repro.obs.events` — the frozen event/phase vocabulary shared by
  both runtimes, plus the JSONL artifact schema and its validator;
* :mod:`repro.obs.recorder` — the span/event recording interface: the
  sim backend stamps *virtual* time and feeds the existing
  :class:`~repro.sim.trace.Trace`; the mp backend stamps wall time into
  a per-process buffer that is batched over the control channel;
* :mod:`repro.obs.collector` — the mp-side glue: worker configuration,
  per-rank event buffering, and the registry-side merge that turns the
  per-rank streams into one time-ordered JSONL artifact.

``repro obs`` (see :mod:`repro.cli`) renders a migration-window report
— per-phase breakdown, per-chunk transfer throughput, per-peer drain
arrivals — from that artifact; :mod:`repro.analysis.obs` holds the
loader/aggregator it is built on.
"""

from repro.obs.clock import (
    ClockSample,
    OffsetEstimator,
    align_events,
    best_offsets,
)
from repro.obs.collector import ObsConfig, RegistryCollector, WorkerObs
from repro.obs.events import (
    EVENT_KINDS,
    PHASES,
    TRACE_KINDS,
    encode_jsonl_line,
    validate_record,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    POW2_BUCKETS,
    TIME_BUCKETS_S,
)
from repro.obs.recorder import NullRecorder, Recorder, Span, TraceRecorder

__all__ = [
    "ClockSample",
    "Counter",
    "EVENT_KINDS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRecorder",
    "ObsConfig",
    "OffsetEstimator",
    "PHASES",
    "POW2_BUCKETS",
    "Recorder",
    "RegistryCollector",
    "Span",
    "TIME_BUCKETS_S",
    "TRACE_KINDS",
    "TraceRecorder",
    "WorkerObs",
    "align_events",
    "best_offsets",
    "encode_jsonl_line",
    "validate_record",
]

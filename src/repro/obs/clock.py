"""Cross-process clock alignment for merged obs artifacts.

The mp workers stamp events with their own ``time.time()``; on one
machine those clocks agree to microseconds, but across machines (or
under NTP steps) the merged JSONL is only meaningful after each
worker's stream is shifted onto a common timeline. We use the classic
NTP midpoint-of-RTT estimator over the request/reply exchanges the
runtime already performs (the ctl ``register`` round trip and the
per-link ``hello``/``hello_ack`` handshake):

* the requester notes ``t_send``, the peer replies with its own clock
  reading ``t_peer``, the requester notes ``t_recv``;
* ``offset = t_peer - (t_send + t_recv) / 2`` estimates *peer clock
  minus local clock*, with uncertainty ``err = (t_recv - t_send) / 2``
  (the reply could have been stamped anywhere inside the RTT).

Each worker keeps the minimum-uncertainty sample per peer and emits one
``clock_offset`` event per peer at teardown. The registry is the
reference clock (peer id ``"registry"``); :func:`align_events` shifts
every actor's timestamps by its best registry offset, which is a
*constant per-actor shift* — it can interleave events across actors
differently, but never reorders two events of the same actor.
"""

from __future__ import annotations

from typing import Iterable

__all__ = ["ClockSample", "OffsetEstimator", "REGISTRY_PEER",
           "align_events", "best_offsets"]

#: Peer name under which workers record their offset to the registry
#: clock (the cluster's reference timeline).
REGISTRY_PEER = "registry"


class ClockSample:
    """One midpoint-of-RTT measurement of a peer clock."""

    __slots__ = ("peer", "offset", "err")

    def __init__(self, peer: str, offset: float, err: float):
        self.peer = peer
        self.offset = offset
        self.err = err

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"ClockSample(peer={self.peer!r}, offset={self.offset:+.6f},"
                f" err={self.err:.6f})")


class OffsetEstimator:
    """Per-worker accumulator of clock-offset samples.

    Feed it one :meth:`observe` per request/reply exchange; it keeps the
    minimum-uncertainty sample per peer (narrower RTT ⇒ tighter bound on
    where inside it the peer stamped its clock).
    """

    __slots__ = ("_best",)

    def __init__(self) -> None:
        self._best: dict[str, ClockSample] = {}

    def observe(self, peer: str, t_send: float, t_peer: float,
                t_recv: float) -> ClockSample:
        """Fold one exchange; returns the sample it produced."""
        if t_recv < t_send:
            t_send, t_recv = t_recv, t_send
        offset = t_peer - (t_send + t_recv) / 2.0
        err = (t_recv - t_send) / 2.0
        sample = ClockSample(peer, offset, err)
        cur = self._best.get(peer)
        if cur is None or err < cur.err:
            self._best[peer] = sample
        return sample

    def samples(self) -> list[ClockSample]:
        """Best sample per peer, stable order."""
        return [self._best[p] for p in sorted(self._best)]

    def offset_to(self, peer: str) -> float | None:
        s = self._best.get(peer)
        return None if s is None else s.offset

    def events(self) -> list[tuple[str, dict]]:
        """``("clock_offset", fields)`` pairs ready for a recorder."""
        return [("clock_offset",
                 {"peer": s.peer, "offset": s.offset, "err": s.err})
                for s in self.samples()]


def best_offsets(events: Iterable[dict],
                 peer: str = REGISTRY_PEER) -> dict[str, float]:
    """Per-actor offset to *peer*'s clock from ``clock_offset`` records.

    When an actor shipped several samples for the same peer (e.g. one
    per link re-establishment), the minimum-``err`` one wins.
    """
    best: dict[str, tuple[float, float]] = {}
    for rec in events:
        if rec.get("kind") != "clock_offset" or rec.get("peer") != peer:
            continue
        actor = rec["actor"]
        err = float(rec.get("err", 0.0))
        cur = best.get(actor)
        if cur is None or err < cur[0]:
            best[actor] = (err, float(rec["offset"]))
    return {actor: off for actor, (_, off) in best.items()}


def align_events(events: Iterable[dict],
                 peer: str = REGISTRY_PEER) -> list[dict]:
    """Shift each actor's timestamps onto *peer*'s timeline.

    ``offset`` estimates *peer minus local*, so the registry-time view
    of a local stamp is ``ts + offset``. Actors without a sample (the
    registry itself, pre-trace artifacts) pass through unshifted. The
    shift is constant per actor, so same-actor order is preserved by
    construction; the result is re-sorted by ``ts`` to restore the
    merged-stream invariant.
    """
    events = list(events)
    offsets = best_offsets(events, peer=peer)
    out = []
    for rec in events:
        off = offsets.get(rec.get("actor"))
        if off:
            rec = dict(rec)
            rec["ts"] = rec["ts"] + off
        out.append(rec)
    out.sort(key=lambda r: r.get("ts", 0.0))
    return out

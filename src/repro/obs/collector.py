"""Cross-process event collection for the multiprocess runtime.

Worker side, a :class:`WorkerObs` bundles the per-process pieces: a
:class:`~repro.obs.recorder.BufferRecorder` (wall-clock events), a
:class:`~repro.obs.metrics.MetricsRegistry` (hot-path counters), and the
sampling discipline for per-message events. The worker ships batches as
``("obs", rank, actor, events, snapshot_or_None)`` frames on its
*existing* registry control connection — no extra socket, and the frames
are plain data for the allowlist unpickler.

Registry side, a :class:`RegistryCollector` merges the per-rank streams:
events accumulate tagged with their actor, metric snapshots fold into
one cluster-wide registry, and :meth:`write_jsonl` emits the
time-ordered artifact that ``repro obs report`` and
:mod:`repro.analysis.obs` consume.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Any, Callable

from repro.obs.clock import OffsetEstimator
from repro.obs.events import encode_jsonl_line
from repro.obs.metrics import MetricsRegistry
from repro.obs.recorder import BufferRecorder, Span

__all__ = ["ObsConfig", "WorkerObs", "RegistryCollector"]


def _incarnation(actor: str) -> int:
    """``p1.m2`` → 2, ``p1`` → 0 — the gauge-merge freshness stamp."""
    _, _, suffix = actor.partition(".m")
    try:
        return int(suffix) if suffix else 0
    except ValueError:
        return 0


@dataclass(frozen=True)
class ObsConfig:
    """What the mp runtime collects. Constructed in the launcher and
    inherited by worker processes (fork).

    ``sample_every`` governs per-*message* events only (``send`` /
    ``recv``): 0 (default) records none — steady-state traffic is then
    visible through counters alone, which is what keeps the enabled-mode
    overhead inside the fastpath benchmark's 3%% budget; ``N > 0``
    records every Nth message.

    ``flush_every`` is a *count*: ship a batch once that many events
    buffer up. ``flush_seconds`` is a *period*: when > 0, each worker
    runs a daemon flusher that every ``flush_seconds`` ships whatever is
    buffered plus a live metrics snapshot, so ``repro obs watch`` can
    tail queue depth / outbox length / chunk bytes during a run instead
    of only after teardown. 0 (default) keeps the teardown-only
    behaviour.
    """

    enabled: bool = True
    sample_every: int = 0
    flush_every: int = 512
    flush_seconds: float = 0.0

    @classmethod
    def coerce(cls, value: "ObsConfig | bool | None") -> "ObsConfig | None":
        if value is None or value is False:
            return None
        if value is True:
            return cls()
        if isinstance(value, cls):
            return value if value.enabled else None
        raise TypeError(f"obs must be ObsConfig | bool | None, "
                        f"got {type(value).__name__}")


class WorkerObs:
    """Per-worker observability state (one OS process, one incarnation)."""

    def __init__(self, config: ObsConfig, rank: int, actor: str,
                 send_batch: Callable[[tuple], None]):
        self.config = config
        self.rank = rank
        self.actor = actor
        #: writes one ("obs", ...) frame on the worker's ctl connection
        self._send_batch = send_batch
        self.metrics = MetricsRegistry()
        self.recorder = BufferRecorder(
            actor, flush_every=config.flush_every,
            on_full=lambda _rec: self.flush())
        self.clock = OffsetEstimator()
        self._msg_seq = 0

    # -- recording ---------------------------------------------------------
    def event(self, kind: str, **fields: Any) -> None:
        self.recorder.event(kind, **fields)

    def span(self, phase: str, **fields: Any) -> Span:
        return self.recorder.span(phase, rank=self.rank, **fields)

    def sample_message(self) -> bool:
        """True when this message should emit a per-message event."""
        n = self.config.sample_every
        if n <= 0:
            return False
        self._msg_seq += 1
        return self._msg_seq % n == 0

    # -- shipping ----------------------------------------------------------
    def flush(self, final: bool = False, live: bool = False) -> None:
        """Ship buffered events (and metrics) upstream.

        *final* drains everything, appends the per-peer ``clock_offset``
        events, and attaches the authoritative metrics snapshot; *live*
        (the periodic flusher) attaches a snapshot too, but marked
        non-final so the collector shows it in the live view without
        folding it into the cluster-wide merge. Callers serialize the
        ctl write themselves (the mp runtime holds its ctl write lock).
        """
        if final:
            for kind, fields in self.clock.events():
                self.recorder.event(kind, **fields)
        events = self.recorder.drain()
        snapshot = self.metrics.snapshot() if (final or live) else None
        if not events and snapshot is None:
            return
        try:
            self._send_batch(("obs", self.rank, self.actor, events, snapshot,
                              final))
        except OSError:
            return  # registry gone (teardown); diagnostics are best-effort


class RegistryCollector:
    """Registry-side merge of every worker's streams."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        #: (ts, actor, kind, fields), unsorted until read
        self._events: list[tuple[float, str, str, dict]] = []
        self.metrics = MetricsRegistry()
        #: latest *live* (non-final) snapshot per actor: actor -> (ts, snap)
        self._live: dict[str, tuple[float, list[dict]]] = {}

    def absorb(self, frame: tuple) -> None:
        """Fold one ``("obs", rank, actor, events, snapshot[, final])``
        frame.

        Legacy 5-tuples (pre-live-streaming workers) carry a snapshot
        only at teardown, so a non-``None`` snapshot implies final.
        Final snapshots merge into the cluster-wide registry stamped
        with the actor's incarnation (deterministic gauge resolution —
        see :meth:`MetricsRegistry.merge_snapshot`); live ones only
        refresh the :meth:`live_view`.
        """
        if len(frame) >= 6:
            _, _rank, actor, events, snapshot, final = frame[:6]
        else:
            _, _rank, actor, events, snapshot = frame
            final = snapshot is not None
        with self._lock:
            for ts, kind, fields in events:
                self._events.append((ts, actor, kind, fields))
        if snapshot is not None:
            if final:
                self.metrics.merge_snapshot(snapshot,
                                            stamp=_incarnation(actor))
            else:
                with self._lock:
                    self._live[actor] = (time.time(), snapshot)

    def record(self, actor: str, kind: str, **fields: Any) -> None:
        """Registry-originated event (e.g. the observed migration window)."""
        with self._lock:
            self._events.append((time.time(), actor, kind, fields))

    def events(self) -> list[dict]:
        """Every collected event as a JSONL-shaped dict, time-ordered.

        Terminal gauge values (``mp.queue_depth``, ``mp.live_links``,
        ``dir.live_shards``, ...) are appended as explicit ``gauge``
        records, so the artifact — and the ``repro obs`` report — carry
        them without consulting the metrics side-channel."""
        with self._lock:
            rows = sorted(self._events)
        out = [{"ts": ts, "actor": actor, "kind": kind, **fields}
               for ts, actor, kind, fields in rows]
        ts = out[-1]["ts"] if out else time.time()
        for rec in self.metrics.snapshot():
            if rec["type"] != "gauge":
                continue
            labels = rec.get("labels", {})
            if "actor" in labels:
                actor = str(labels["actor"])
            elif "rank" in labels:
                actor = f"p{labels['rank']}"
            else:
                actor = "registry"
            out.append({"ts": ts, "actor": actor, "kind": "gauge",
                        "name": rec["name"], "value": rec["value"]})
        return out

    def traces(self) -> dict[str, list[dict]]:
        """Events grouped by ``trace_id``, time-ordered within each trace.

        One key per migration (or recovery): the source's
        freeze/reject/drain/transfer spans, the destination's
        restore/commit spans, the per-chunk progress and the registry's
        ``migration_window`` all stitch under the id the runtime stamped
        on the wire.
        """
        out: dict[str, list[dict]] = {}
        for rec in self.events():
            tid = rec.get("trace_id")
            if tid is not None:
                out.setdefault(tid, []).append(rec)
        return out

    def trace_links(self) -> dict[str, list[str]]:
        """Cross-trace causality edges: ``{trace_id: [linked ids...]}``.

        Built from the ``links`` field of collected records (today: a
        recovery's ``recover`` root span linking the migration window it
        interrupted). Only traces that carry at least one link appear;
        linked ids are de-duplicated in first-seen order so stitching
        tools can walk migration → recovery chains deterministically.
        """
        out: dict[str, list[str]] = {}
        for rec in self.events():
            tid = rec.get("trace_id")
            links = rec.get("links")
            if tid is None or not links:
                continue
            seen = out.setdefault(tid, [])
            for link in links:
                if link not in seen:
                    seen.append(link)
        return out

    def live_view(self) -> dict[str, dict[str, Any]]:
        """Latest streamed gauge levels per actor.

        ``{actor: {"ts": <last flush>, "gauges": {name: value}}}`` from
        the periodic (non-final) snapshots — the data ``repro obs
        watch`` tails during a run.
        """
        with self._lock:
            live = dict(self._live)
        view: dict[str, dict[str, Any]] = {}
        for actor in sorted(live):
            ts, snapshot = live[actor]
            gauges = {rec["name"]: rec["value"] for rec in snapshot
                      if rec["type"] == "gauge"}
            view[actor] = {"ts": ts, "gauges": gauges}
        return view

    def write_jsonl(self, path: str) -> int:
        """Write the merged artifact; returns the number of records."""
        records = self.events()
        with open(path, "w", encoding="utf-8") as fh:
            for rec in records:
                fh.write(encode_jsonl_line(rec) + "\n")
        return len(records)

"""The frozen observability vocabulary and the JSONL artifact schema.

Both runtimes — the virtual-time simulator and the real multiprocess
backend — emit the *same* event kinds and phase names, so one report
renderer (:mod:`repro.analysis.obs`) and one invariant vocabulary serve
both. Like the ``KIND_*`` constants of :mod:`repro.sim.trace`, these
sets are public API: the stress suite, the JSONL validator and the
``repro obs`` report all key on the exact strings, so renames are
breaking changes and the vocabulary is kept as literal frozen sets
(``tests/unit/test_obs.py`` pins them).

JSONL artifact schema — one JSON object per line::

    {"ts": <number>, "actor": "<p1|p1.m1|registry>", "kind": "<EVENT_KINDS>",
     ...kind-specific fields...}

``ts`` is wall-clock (``time.time()``) in the mp runtime and virtual
seconds in the simulator; within one artifact all timestamps share a
clock, so sorting by ``ts`` yields the merged cross-process stream.
When per-worker clocks disagree, each worker's ``clock_offset`` record
carries its estimated offset to the registry clock and
:func:`repro.obs.clock.align_events` shifts the stream onto one
timeline before rendering.

Span records may additionally carry the causal trace context: a
``trace_id`` naming the migration (or recovery) the span belongs to and
a ``parent`` naming the phase it is causally nested under. Both are
optional — pre-trace artifacts stay valid — but when present they must
be strings, and the validator enforces that.

A record may also carry ``links``: a list of *other* traces' ids this
record is causally connected to without being nested under them. The
one producer today is cross-migration causality — a recovery triggered
by a crash inside a migration window links the interrupted migration's
trace on its ``recover`` root span, so trace stitching can walk from
the migration into the recovery it caused.
"""

from __future__ import annotations

import json
from typing import Any

__all__ = ["PHASES", "EVENT_KINDS", "SPAN_KINDS", "TRACE_KINDS",
           "validate_record", "encode_jsonl_line", "decode_jsonl_line"]

#: The migration lifecycle phases, in execution order. Source side runs
#: ``freeze`` (poll-point interception until the scheduler has produced
#: the new process), opens the connection-rejection window (``reject``),
#: drains in-transit messages (``drain``) and ships state (``transfer``);
#: the destination restores (``restore``) and commits (``commit``).
#: ``recover`` is the launcher-observed end-to-end crash-recovery window
#: (checkpoint load → replacement spawn → restore → commit) — recovery
#: reuses the migration phases inside it.
PHASES: frozenset[str] = frozenset({
    "freeze", "reject", "drain", "transfer", "restore", "commit",
    "recover",
})

#: Execution-order ranking for report rendering (not part of the frozen
#: contract — the *names* are).
PHASE_ORDER = ("freeze", "reject", "drain", "transfer", "restore", "commit",
               "recover")

#: Paired span delimiters. ``span_start`` carries ``phase`` (+ ``rank``);
#: ``span_end`` repeats them and adds ``seconds``.
SPAN_KINDS: frozenset[str] = frozenset({"span_start", "span_end"})

#: Every event kind an obs artifact may contain.
EVENT_KINDS: frozenset[str] = frozenset({
    # migration lifecycle
    "span_start",        # phase=<PHASES> rank=<int> [trace_id=<str> parent=<str>]
    "span_end",          # phase=<PHASES> rank=<int> seconds=<float> [trace_id= parent=]
    "drain_peer",        # peer=<int> last=<eom|peer_migrating> rank=<int>
    "state_chunk",       # seq=<int> nbytes=<int> last=<bool> rank=<int>
    "migration_window",  # rank=<int> seconds=<float>  (registry-observed)
    # steady state (sampled / low rate)
    "send",              # dest=<int> tag=<int>
    "recv",              # src=<int> tag=<int>
    "connect",           # dest=<int> attempts=<int> seconds=<float>
    "lookup",            # dest=<int> status=<str>
    "retry",             # what=<str>
    # cross-process clock alignment (one per measured peer clock)
    "clock_offset",      # peer=<str> offset=<float> err=<float>
    # terminal gauge values (queue depth, live links, ...)
    "gauge",             # name=<str> value=<number>
    # free-form annotation (tooling, registry milestones)
    "mark",              # text=<str>
})

#: Kinds that may carry the optional causal trace context
#: (``trace_id``/``parent``). ``migration_window`` and ``state_chunk``
#: belong to exactly one migration, so they join the span kinds here.
TRACE_KINDS: frozenset[str] = frozenset({
    "span_start", "span_end", "drain_peer", "state_chunk",
    "migration_window",
})

_REQUIRED: dict[str, tuple[str, ...]] = {
    "span_start": ("phase", "rank"),
    "span_end": ("phase", "rank", "seconds"),
    "drain_peer": ("peer", "last"),
    "state_chunk": ("seq", "nbytes"),
    "migration_window": ("rank", "seconds"),
    "send": ("dest",),
    "recv": ("src",),
    "connect": ("dest",),
    "lookup": ("dest", "status"),
    "retry": ("what",),
    "clock_offset": ("peer", "offset", "err"),
    "gauge": ("name", "value"),
    "mark": (),
}


def validate_record(rec: Any) -> str | None:
    """Schema check of one decoded JSONL record; ``None`` when valid,
    else a human-readable reason."""
    if not isinstance(rec, dict):
        return f"record is {type(rec).__name__}, expected object"
    for field, types in (("ts", (int, float)), ("actor", (str,)),
                         ("kind", (str,))):
        if field not in rec:
            return f"missing required field {field!r}"
        if not isinstance(rec[field], types) or isinstance(rec[field], bool):
            return f"field {field!r} has type {type(rec[field]).__name__}"
    kind = rec["kind"]
    if kind not in EVENT_KINDS:
        return f"unknown event kind {kind!r}"
    for field in _REQUIRED[kind]:
        if field not in rec:
            return f"{kind} record missing field {field!r}"
    if kind in SPAN_KINDS and rec["phase"] not in PHASES:
        return f"{kind} names unknown phase {rec['phase']!r}"
    for field in ("trace_id", "parent"):
        if field in rec and rec[field] is not None:
            if kind not in TRACE_KINDS:
                return f"{kind} record may not carry {field!r}"
            if not isinstance(rec[field], str):
                return (f"field {field!r} has type "
                        f"{type(rec[field]).__name__}, expected str")
    if "links" in rec and rec["links"] is not None:
        if kind not in TRACE_KINDS:
            return f"{kind} record may not carry 'links'"
        if not isinstance(rec["links"], list) \
                or not all(isinstance(x, str) for x in rec["links"]):
            return "field 'links' must be a list of trace-id strings"
    return None


def encode_jsonl_line(rec: dict) -> str:
    """One artifact line (no trailing newline); keys sorted for stable
    diffs."""
    return json.dumps(rec, sort_keys=True, separators=(",", ":"))


def decode_jsonl_line(line: str) -> dict:
    return json.loads(line)

"""Admission control for concurrent migration windows (the gang engine).

The paper's protocol (Figs. 5/7) describes one migration at a time, and
until PR 10 both runtimes inherited that: one global window, serialized
end-to-end. But the protocol itself only *requires* serialization per
migrating rank — two windows whose migrating ranks differ never touch
the same freeze/drain/transfer state and may overlap freely. (A peer
that talks to *both* migrating ranks simply holds two independent
``peer_migrating`` drains, one per channel, which the per-channel
communication-state transfer already handles.)

:class:`GangAdmission` is that rule as a pure, deterministic state
machine, shared verbatim by the simulator's scheduler and the mp
registry/launcher so the two runtimes cannot drift:

* a request for a rank with no open window is **admitted** immediately,
  capacity permitting;
* a request for a rank whose window is open is **queued** (FIFO) — the
  queued-conflict case, dispatched when the open window closes;
* a request for a rank that is already queued **coalesces** into the
  existing entry (latest destination wins — the newest placement
  intent supersedes the stale one);
* an optional ``concurrency`` cap bounds the number of simultaneously
  open windows; ``concurrency=1`` reproduces the pre-gang serialized
  behavior exactly.

Closing a window (commit, abort, or the rank terminating) re-scans the
queue in FIFO order and reports every request that became admissible;
the caller opens those windows. The machine never performs I/O and
never reads a clock, so Hypothesis can drive it through arbitrary
request/complete interleavings and check the invariants directly
(``tests/property/test_gang_admission.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["GangAdmission", "ADMIT", "QUEUED", "COALESCED"]

ADMIT = "admit"
QUEUED = "queued"
COALESCED = "coalesced"


@dataclass
class GangAdmission:
    """Pure admission state machine for overlapping migration windows."""

    #: maximum simultaneously open windows; ``None`` is unbounded
    concurrency: int | None = None
    #: rank -> destination of the open window
    inflight: dict = field(default_factory=dict)
    #: FIFO of (rank, dest) requests waiting for admission
    pending: list = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.concurrency is not None and self.concurrency < 1:
            raise ValueError(
                f"migration concurrency must be >= 1: {self.concurrency}")

    # -- queries ---------------------------------------------------------

    @property
    def active(self) -> int:
        return len(self.inflight)

    @property
    def depth(self) -> int:
        return len(self.pending)

    def admissible(self, rank) -> bool:
        """Could a window for ``rank`` open right now?"""
        if rank in self.inflight:
            return False
        return self.concurrency is None or self.active < self.concurrency

    # -- transitions -----------------------------------------------------

    def request(self, rank, dest) -> str:
        """One migration request arrives. Returns the verdict.

        ``ADMIT`` — the caller must open the window now (the rank has
        been moved into ``inflight``). ``QUEUED`` — parked FIFO behind
        the conflict (same rank already migrating) or the concurrency
        cap. ``COALESCED`` — the rank already had a queued request; its
        destination was updated in place, queue position kept.
        """
        for i, (r, _) in enumerate(self.pending):
            if r == rank:
                self.pending[i] = (rank, dest)
                return COALESCED
        if not self.admissible(rank):
            self.pending.append((rank, dest))
            return QUEUED
        self.inflight[rank] = dest
        return ADMIT

    def complete(self, rank) -> list:
        """The open window for ``rank`` closed (commit or abort).

        Returns the queued ``(rank, dest)`` requests that became
        admissible, in FIFO order, already moved into ``inflight`` —
        the caller opens each window. Unknown ranks are tolerated (a
        duplicate close dispatches whatever is admissible and nothing
        else).
        """
        self.inflight.pop(rank, None)
        return self._dispatch()

    def cancel(self, rank) -> list:
        """``rank`` terminated: drop its queued request and open window.

        Returns newly admissible queued requests, as :meth:`complete`.
        """
        self.pending = [(r, d) for r, d in self.pending if r != rank]
        return self.complete(rank)

    def _dispatch(self) -> list:
        admitted = []
        still = []
        for rank, dest in self.pending:
            if self.admissible(rank):
                self.inflight[rank] = dest
                admitted.append((rank, dest))
            else:
                still.append((rank, dest))
        self.pending = still
        return admitted

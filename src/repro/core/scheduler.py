"""The centralized scheduler (paper Sections 2 and 3).

The scheduler is a (daemon) process in the virtual machine that

1. keeps track of hosts and application processes (the master PL table and
   each rank's execution status),
2. provides the lookup service that ``connect()`` consults after a
   connection rejection — location updates are therefore strictly
   *on demand*, never broadcast,
3. coordinates process migration: on a user migration request it performs
   *process initialization* (remotely invoking the migration-enabled
   executable on the destination) and then signals the migrating process;
   it answers ``migration_start`` with the initialized process's vmid,
   installs the new location at ``restore_complete``, and books the
   ``migration_commit``.

The paper notes the scheduler could equally be distributed (DNS/LDAP/
Chord-style); a centralized one is used "for the sake of simplicity" and
that is what we reproduce. The lookup *protocol* is what matters to the
communication state transfer, not the directory's internal structure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.core.messages import (
    InitAbort,
    LookupReply,
    LookupRequest,
    MigrateRequest,
    MigrationCommit,
    MigrationStart,
    NewProcessReply,
    PLSnapshot,
    RestoreComplete,
    SIG_MIGRATE,
    TerminateNotice,
)
from repro.core.pltable import PLTable
from repro.vm.ids import Rank, VmId
from repro.vm.messages import ControlEnvelope
from repro.vm.process import ProcessContext

__all__ = ["SchedulerState", "MigrationRecord", "scheduler_main",
           "STATUS_RUNNING", "STATUS_MIGRATING", "STATUS_TERMINATED"]

STATUS_RUNNING = "running"
STATUS_MIGRATING = "migrating"
STATUS_TERMINATED = "terminated"

#: CPU cost (reference seconds) of remotely invoking the migration-enabled
#: executable on the destination host (process initialization).
PROCESS_INIT_COST = 5e-3


@dataclass
class MigrationRecord:
    """Bookkeeping for one migration (scheduler's records)."""

    rank: Rank
    dest_host: str
    old_vmid: VmId | None = None
    new_vmid: VmId | None = None
    t_request: float = 0.0
    t_signalled: float = 0.0
    t_start: float = 0.0
    t_restored: float = 0.0
    t_committed: float = 0.0
    #: the rank finished before the migration could start
    aborted: bool = False

    @property
    def completed(self) -> bool:
        return self.t_committed > 0.0

    @property
    def duration(self) -> float:
        """migration_start → restore_complete (the paper's Migrate row)."""
        return self.t_restored - self.t_start


@dataclass
class SchedulerState:
    """Shared state between the scheduler process and the launcher.

    ``spawn_initialized`` is injected by the application launcher: it
    performs process initialization (spawning the migration-enabled
    executable on the destination) and returns the new process's vmid.
    """

    pl: PLTable
    spawn_initialized: Callable[[Rank, str], VmId]
    status: dict[Rank, str] = field(default_factory=dict)
    init_vmid: dict[Rank, VmId] = field(default_factory=dict)
    migrations: list[MigrationRecord] = field(default_factory=list)
    lookups_served: int = 0

    def current_record(self, rank: Rank) -> MigrationRecord:
        for rec in reversed(self.migrations):
            if rec.rank == rank and not rec.completed and not rec.aborted:
                return rec
        raise LookupError(f"no open migration record for rank {rank}")


def scheduler_main(ctx: ProcessContext, state: SchedulerState) -> None:
    """Event loop of the scheduler process (spawned as a daemon)."""
    vm = ctx.vm
    while True:
        item = ctx.next_message()
        if not isinstance(item, ControlEnvelope):
            vm.trace_record(ctx.name, "scheduler_ignored",
                            item=type(item).__name__)
            continue
        msg = item.msg

        if isinstance(msg, LookupRequest):
            state.lookups_served += 1
            status = state.status.get(msg.rank, STATUS_TERMINATED)
            if status == STATUS_MIGRATING:
                reply = LookupReply(msg.rank, "migrate",
                                    state.init_vmid[msg.rank], msg.token)
            elif status == STATUS_RUNNING:
                reply = LookupReply(msg.rank, "running",
                                    state.pl.lookup(msg.rank), msg.token)
            else:
                reply = LookupReply(msg.rank, "terminated", None, msg.token)
            vm.trace_record(ctx.name, "lookup_served", rank=msg.rank,
                            status=reply.status)
            ctx.route_control(msg.reply_to, reply)

        elif isinstance(msg, MigrateRequest):
            if state.status.get(msg.rank) != STATUS_RUNNING \
                    or msg.rank in state.init_vmid:
                vm.trace_record(ctx.name, "migrate_request_ignored",
                                rank=msg.rank,
                                status=state.status.get(msg.rank))
                continue
            rec = MigrationRecord(rank=msg.rank, dest_host=msg.dest_host,
                                  t_request=ctx.kernel.now)
            state.migrations.append(rec)
            # Process initialization: remote invocation of the
            # migration-enabled executable on the destination machine.
            ctx.burn(PROCESS_INIT_COST)
            new_vmid = state.spawn_initialized(msg.rank, msg.dest_host)
            state.init_vmid[msg.rank] = new_vmid
            rec.new_vmid = new_vmid
            vm.trace_record(ctx.name, "initialized_process_spawned",
                            rank=msg.rank, vmid=str(new_vmid),
                            host=msg.dest_host)
            # Now instruct the migrating process.
            target = state.pl.lookup(msg.rank)
            ctx.send_signal(target, SIG_MIGRATE)
            rec.t_signalled = ctx.kernel.now
            vm.trace_record(ctx.name, "migration_signalled", rank=msg.rank,
                            target=str(target))

        elif isinstance(msg, MigrationStart):
            state.status[msg.rank] = STATUS_MIGRATING
            rec = state.current_record(msg.rank)
            rec.old_vmid = msg.old_vmid
            rec.t_start = ctx.kernel.now
            ctx.route_control(
                item.src_vmid,
                NewProcessReply(msg.rank, state.init_vmid[msg.rank]))
            vm.trace_record(ctx.name, "migration_start_acked", rank=msg.rank)

        elif isinstance(msg, RestoreComplete):
            rec = state.current_record(msg.rank)
            rec.t_restored = ctx.kernel.now
            state.pl.update(msg.rank, msg.new_vmid)
            state.status[msg.rank] = STATUS_RUNNING
            state.init_vmid.pop(msg.rank, None)
            ctx.route_control(
                item.src_vmid,
                PLSnapshot(rank=msg.rank, table=state.pl.snapshot(),
                           old_vmid=rec.old_vmid))
            vm.trace_record(ctx.name, "restore_complete", rank=msg.rank,
                            new_vmid=str(msg.new_vmid))

        elif isinstance(msg, MigrationCommit):
            rec = state.current_record(msg.rank)
            rec.t_committed = ctx.kernel.now
            vm.trace_record(ctx.name, "migration_committed", rank=msg.rank)

        elif isinstance(msg, TerminateNotice):
            state.status[msg.rank] = STATUS_TERMINATED
            vm.trace_record(ctx.name, "rank_terminated", rank=msg.rank)
            # If a migration was pending for this rank but its process
            # finished first, release the waiting initialized process.
            pending = state.init_vmid.pop(msg.rank, None)
            if pending is not None:
                try:
                    rec = state.current_record(msg.rank)
                    rec.aborted = True
                except LookupError:
                    pass
                ctx.route_control(pending, InitAbort(rank=msg.rank))
                vm.trace_record(ctx.name, "migration_aborted",
                                rank=msg.rank, init=str(pending))

        else:
            vm.trace_record(ctx.name, "scheduler_ignored",
                            item=type(msg).__name__)

"""The centralized scheduler (paper Sections 2 and 3).

The scheduler is a (daemon) process in the virtual machine that

1. keeps track of hosts and application processes (the master PL table and
   each rank's execution status),
2. provides the lookup service that ``connect()`` consults after a
   connection rejection — location updates are therefore strictly
   *on demand*, never broadcast,
3. coordinates process migration: on a user migration request it performs
   *process initialization* (remotely invoking the migration-enabled
   executable on the destination) and then signals the migrating process;
   it answers ``migration_start`` with the initialized process's vmid,
   installs the new location at ``restore_complete``, and books the
   ``migration_commit``.

The paper notes the scheduler could equally be distributed (DNS/LDAP/
Chord-style); a centralized one is used "for the sake of simplicity" and
that is what we reproduce. The lookup *protocol* is what matters to the
communication state transfer, not the directory's internal structure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from repro.core.messages import (
    InitAbort,
    LookupReply,
    LookupRequest,
    MigrateRequest,
    MigrationAbort,
    MigrationCommit,
    MigrationStart,
    NewProcessReply,
    PLSnapshot,
    RestoreComplete,
    SchedulerAck,
    SIG_MIGRATE,
    TerminateNotice,
)
from repro.core.gang import ADMIT, GangAdmission
from repro.core.pltable import PLTable
from repro.directory.base import CentralizedDirectory, LocationRecord
from repro.directory.messages import DirRetransmitTick, DirUpdateAck
from repro.vm.ids import Rank, VmId
from repro.vm.messages import ControlEnvelope
from repro.vm.process import ProcessContext

if TYPE_CHECKING:  # pragma: no cover
    from repro.directory.daemons import DirectoryPublisher

__all__ = ["SchedulerState", "MigrationRecord", "scheduler_main",
           "STATUS_RUNNING", "STATUS_MIGRATING", "STATUS_TERMINATED"]

STATUS_RUNNING = "running"
STATUS_MIGRATING = "migrating"
STATUS_TERMINATED = "terminated"

#: CPU cost (reference seconds) of remotely invoking the migration-enabled
#: executable on the destination host (process initialization).
PROCESS_INIT_COST = 5e-3


@dataclass
class MigrationRecord:
    """Bookkeeping for one migration (scheduler's records)."""

    rank: Rank
    dest_host: str
    old_vmid: VmId | None = None
    new_vmid: VmId | None = None
    t_request: float = 0.0
    t_signalled: float = 0.0
    t_start: float = 0.0
    t_restored: float = 0.0
    t_committed: float = 0.0
    #: the rank finished before the migration could start
    aborted: bool = False
    #: causal trace id stitching every span of this migration (minted
    #: deterministically by the scheduler: ``sim-r<rank>-<n>``)
    trace_id: str | None = None

    @property
    def completed(self) -> bool:
        return self.t_committed > 0.0

    @property
    def duration(self) -> float:
        """migration_start → restore_complete (the paper's Migrate row)."""
        return self.t_restored - self.t_start


@dataclass
class SchedulerState:
    """Shared state between the scheduler process and the launcher.

    ``spawn_initialized`` is injected by the application launcher: it
    performs process initialization (spawning the migration-enabled
    executable on the destination) and returns the new process's vmid.

    The master PL table, rank statuses and init designations live in a
    :class:`~repro.directory.base.CentralizedDirectory` (``directory``):
    the scheduler is the directory's single writer, and with a
    distributed backend configured every mutation is also pushed to the
    directory daemons through ``publisher``. ``status`` and ``init_vmid``
    remain available as live dict views for callers and tests.
    """

    pl: PLTable
    spawn_initialized: Callable[[Rank, str], VmId]
    directory: CentralizedDirectory | None = None
    #: pushes every directory mutation to the distributed backend's
    #: daemon nodes; ``None`` for the centralized backend (no daemons)
    publisher: "DirectoryPublisher | None" = None
    migrations: list[MigrationRecord] = field(default_factory=list)
    lookups_served: int = 0
    #: how many times an aborted migration is re-requested per rank
    migration_retry_limit: int = 2
    #: aborted-and-retried counts, per rank
    abort_retries: dict[Rank, int] = field(default_factory=dict)
    #: overlapping-window admission: same-rank requests queue, others
    #: overlap up to the configured concurrency (1 = serialized)
    admission: GangAdmission = field(default_factory=GangAdmission)

    def __post_init__(self) -> None:
        if self.directory is None:
            self.directory = CentralizedDirectory(pl=self.pl)

    @property
    def status(self) -> dict[Rank, str]:
        """Live view of each rank's execution status (directory-backed)."""
        return self.directory.status

    @property
    def init_vmid(self) -> dict[Rank, VmId]:
        """Live view of designated initialized processes (directory-backed)."""
        return self.directory.init_vmid

    def current_record(self, rank: Rank) -> MigrationRecord:
        for rec in reversed(self.migrations):
            if rec.rank == rank and not rec.completed and not rec.aborted:
                return rec
        raise LookupError(f"no open migration record for rank {rank}")


def _publish(ctx: ProcessContext, state: SchedulerState,
             record: LocationRecord) -> None:
    """Push a freshly written record to the directory daemons, if any."""
    if state.publisher is not None:
        state.publisher.publish(ctx, record)


def _open_window(ctx: ProcessContext, state: SchedulerState,
                 rank: Rank, dest_host: str) -> None:
    """Open one migration window: spawn the initialized process on the
    destination and signal the migrating process. The caller has already
    passed the request through admission."""
    vm = ctx.vm
    rec = MigrationRecord(
        rank=rank, dest_host=dest_host,
        t_request=ctx.kernel.now,
        trace_id=f"sim-r{rank}-{len(state.migrations)}")
    state.migrations.append(rec)
    # Process initialization: remote invocation of the
    # migration-enabled executable on the destination machine.
    ctx.burn(PROCESS_INIT_COST)
    new_vmid = state.spawn_initialized(rank, dest_host)
    _publish(ctx, state,
             state.directory.designate_init(rank, new_vmid))
    rec.new_vmid = new_vmid
    vm.trace_record(ctx.name, "initialized_process_spawned",
                    rank=rank, vmid=str(new_vmid), host=dest_host)
    # Now instruct the migrating process.
    target = state.pl.lookup(rank)
    ctx.send_signal(target, SIG_MIGRATE)
    rec.t_signalled = ctx.kernel.now
    vm.trace_record(ctx.name, "migration_signalled", rank=rank,
                    target=str(target))


def _dispatch_admitted(ctx: ProcessContext, state: SchedulerState,
                       admitted: list) -> None:
    """Open windows for queued requests that admission just released.

    A rank that stopped running while it sat in the queue is dropped —
    and dropping it closes its just-granted window, which may in turn
    release further queued requests.
    """
    for rank, dest_host in admitted:
        if state.status.get(rank) != STATUS_RUNNING:
            ctx.vm.trace_record(ctx.name, "migrate_request_ignored",
                                rank=rank, status=state.status.get(rank))
            _dispatch_admitted(ctx, state, state.admission.complete(rank))
            continue
        ctx.vm.trace_record(ctx.name, "migration_dequeued", rank=rank,
                            dest=dest_host)
        _open_window(ctx, state, rank, dest_host)


def scheduler_main(ctx: ProcessContext, state: SchedulerState) -> None:
    """Event loop of the scheduler process (spawned as a daemon)."""
    vm = ctx.vm
    while True:
        item = ctx.next_message()
        if not isinstance(item, ControlEnvelope):
            vm.trace_record(ctx.name, "scheduler_ignored",
                            item=type(item).__name__)
            continue
        msg = item.msg

        if isinstance(msg, LookupRequest):
            state.lookups_served += 1
            status = state.status.get(msg.rank, STATUS_TERMINATED)
            init = state.init_vmid.get(msg.rank)
            if status == STATUS_MIGRATING:
                reply = LookupReply(msg.rank, "migrate",
                                    state.init_vmid[msg.rank], msg.token,
                                    init_vmid=init)
            elif status == STATUS_RUNNING:
                reply = LookupReply(msg.rank, "running",
                                    state.pl.lookup(msg.rank), msg.token,
                                    init_vmid=init)
            else:
                reply = LookupReply(msg.rank, "terminated", None, msg.token,
                                    init_vmid=init)
            vm.trace_record(ctx.name, "lookup_served", rank=msg.rank,
                            status=reply.status)
            ctx.route_control(msg.reply_to, reply)

        elif isinstance(msg, MigrateRequest):
            status = state.status.get(msg.rank)
            if status not in (STATUS_RUNNING, STATUS_MIGRATING):
                vm.trace_record(ctx.name, "migrate_request_ignored",
                                rank=msg.rank, status=status)
                continue
            verdict = state.admission.request(msg.rank, msg.dest_host)
            if verdict != ADMIT:
                # Same-rank conflict or the concurrency cap: parked
                # until an open window closes (the queued-conflict case
                # in docs/protocol.md).
                vm.trace_record(ctx.name, "migration_queued",
                                rank=msg.rank, dest=msg.dest_host,
                                verdict=verdict,
                                depth=state.admission.depth)
                continue
            _open_window(ctx, state, msg.rank, msg.dest_host)

        elif isinstance(msg, MigrationStart):
            # Idempotent: a retransmit (its reply was lost) is answered
            # with the same NewProcessReply without disturbing the record.
            try:
                rec = state.current_record(msg.rank)
            except LookupError:
                # Outlived its migration (completed or aborted): the
                # sender has moved on; nothing to coordinate.
                vm.trace_record(ctx.name, "scheduler_dup_ignored",
                                msg="MigrationStart", rank=msg.rank)
                continue
            if state.status.get(msg.rank) != STATUS_MIGRATING:
                _publish(ctx, state, state.directory.begin_migration(msg.rank))
                rec.old_vmid = msg.old_vmid
                rec.t_start = ctx.kernel.now
            new_vmid = state.init_vmid.get(msg.rank, rec.new_vmid)
            ctx.route_control(item.src_vmid,
                              NewProcessReply(msg.rank, new_vmid,
                                              trace_id=rec.trace_id))
            vm.trace_record(ctx.name, "migration_start_acked", rank=msg.rank)

        elif isinstance(msg, RestoreComplete):
            # Idempotent per (rank, new_vmid): duplicates just get the
            # current PL snapshot again.
            rec = next((r for r in reversed(state.migrations)
                        if r.rank == msg.rank
                        and r.new_vmid == msg.new_vmid), None)
            if rec is None or rec.aborted:
                vm.trace_record(ctx.name, "scheduler_dup_ignored",
                                msg="RestoreComplete", rank=msg.rank)
                continue
            if rec.t_restored == 0.0:
                rec.t_restored = ctx.kernel.now
                _publish(ctx, state,
                         state.directory.commit_migration(msg.rank,
                                                          msg.new_vmid))
                vm.trace_record(ctx.name, "restore_complete", rank=msg.rank,
                                new_vmid=str(msg.new_vmid))
            else:
                vm.trace_record(ctx.name, "scheduler_dup_reack",
                                msg="RestoreComplete", rank=msg.rank)
            ctx.route_control(
                item.src_vmid,
                PLSnapshot(rank=msg.rank, table=state.pl.snapshot(),
                           old_vmid=rec.old_vmid))

        elif isinstance(msg, MigrationCommit):
            try:
                rec = state.current_record(msg.rank)
                rec.t_committed = ctx.kernel.now
                vm.trace_record(ctx.name, "migration_committed",
                                rank=msg.rank)
                _dispatch_admitted(ctx, state,
                                   state.admission.complete(msg.rank))
            except LookupError:
                vm.trace_record(ctx.name, "scheduler_dup_reack",
                                msg="MigrationCommit", rank=msg.rank)
            if msg.ack:
                ctx.route_control(item.src_vmid,
                                  SchedulerAck("migration_commit", msg.rank))

        elif isinstance(msg, MigrationAbort):
            # The migrating process gave up on its drain and reverted to
            # normal execution at its old vmid. Release the waiting
            # initialized process and, within the retry budget, re-issue
            # the migration request. Idempotent: a duplicate abort finds
            # the status already reverted and is simply re-acked.
            if state.status.get(msg.rank) == STATUS_MIGRATING \
                    or msg.rank in state.init_vmid:
                pending = state.init_vmid.get(msg.rank)
                _publish(ctx, state, state.directory.abort_migration(msg.rank))
                try:
                    rec = state.current_record(msg.rank)
                    rec.aborted = True
                    dest_host = rec.dest_host
                except LookupError:
                    dest_host = None
                if pending is not None:
                    ctx.route_control(
                        pending, InitAbort(rank=msg.rank,
                                           reason="migration-aborted"))
                vm.trace_record(ctx.name, "migration_aborted",
                                rank=msg.rank, reason=msg.reason,
                                init=str(pending) if pending else None)
                retries = state.abort_retries.get(msg.rank, 0)
                if dest_host is not None \
                        and retries < state.migration_retry_limit:
                    state.abort_retries[msg.rank] = retries + 1
                    ctx.mailbox.put(ControlEnvelope(
                        src_vmid=ctx.vmid,
                        msg=MigrateRequest(rank=msg.rank,
                                           dest_host=dest_host)))
                    vm.trace_record(ctx.name, "migration_retry_queued",
                                    rank=msg.rank, attempt=retries + 1)
                _dispatch_admitted(ctx, state,
                                   state.admission.complete(msg.rank))
            else:
                vm.trace_record(ctx.name, "scheduler_dup_reack",
                                msg="MigrationAbort", rank=msg.rank)
            ctx.route_control(item.src_vmid,
                              SchedulerAck("migration_abort", msg.rank))

        elif isinstance(msg, TerminateNotice):
            # If a migration was pending for this rank but its process
            # finished first, release the waiting initialized process.
            pending = state.init_vmid.get(msg.rank)
            _publish(ctx, state, state.directory.terminate(msg.rank))
            vm.trace_record(ctx.name, "rank_terminated", rank=msg.rank)
            if pending is not None:
                try:
                    rec = state.current_record(msg.rank)
                    rec.aborted = True
                except LookupError:
                    pass
                ctx.route_control(pending, InitAbort(rank=msg.rank))
                vm.trace_record(ctx.name, "migration_aborted",
                                rank=msg.rank, init=str(pending))
            _dispatch_admitted(ctx, state,
                               state.admission.cancel(msg.rank))
            if msg.ack:
                ctx.route_control(item.src_vmid,
                                  SchedulerAck("terminate", msg.rank))

        elif isinstance(msg, DirUpdateAck):
            if state.publisher is not None:
                state.publisher.on_ack(msg)

        elif isinstance(msg, DirRetransmitTick):
            if state.publisher is not None:
                state.publisher.on_tick(ctx)

        else:
            vm.trace_record(ctx.name, "scheduler_ignored",
                            item=type(msg).__name__)

"""The paper's contribution: migration-supported data communication and
process migration protocols.

Layering (bottom-up): :mod:`repro.core.messages` (wire types),
:mod:`repro.core.pltable` / :mod:`repro.core.recvlist` (protocol state),
:mod:`repro.core.endpoint` (send/connect/recv, Figs. 2-4),
:mod:`repro.core.migration` (migrate/initialize, Figs. 5-7),
:mod:`repro.core.scheduler` (location service + coordination),
:mod:`repro.core.api` / :mod:`repro.core.launch` (user-facing surface).
"""

from repro.core.adaptive import AdaptiveChunkPolicy
from repro.core.api import Program, SnowAPI
from repro.core.autopoll import make_migratable, migratable
from repro.core.balancer import BalancerDecision, LoadBalancer
from repro.core.checkpointing import CheckpointStore, checkpoint_state, restore_state
from repro.core.endpoint import (
    INITIALIZING,
    MIGRATING,
    NORMAL,
    EndpointStats,
    MigrationEndpoint,
)
from repro.core.launch import Application
from repro.core.messages import ANY, DataMessage
from repro.core.pltable import PLTable
from repro.core.recvlist import ReceivedMessageList
from repro.core.scheduler import MigrationRecord, SchedulerState, scheduler_main

__all__ = [
    "ANY",
    "AdaptiveChunkPolicy",
    "Application",
    "BalancerDecision",
    "CheckpointStore",
    "checkpoint_state",
    "restore_state",
    "DataMessage",
    "LoadBalancer",
    "make_migratable",
    "migratable",
    "EndpointStats",
    "INITIALIZING",
    "MIGRATING",
    "MigrationEndpoint",
    "MigrationRecord",
    "NORMAL",
    "PLTable",
    "Program",
    "ReceivedMessageList",
    "SchedulerState",
    "SnowAPI",
    "scheduler_main",
]

"""Payload size estimation for wire/CPU cost accounting.

``snow_send`` charges network and copy costs by message size. Callers that
know their payload size (the MG kernel does) pass ``nbytes`` explicitly;
otherwise we estimate cheaply here — a full codec encode of every payload
would itself distort the timings we are modelling.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.codec import encoded_size

__all__ = ["estimate_nbytes", "MESSAGE_HEADER_BYTES", "CONTROL_PAYLOAD_BYTES"]

#: framing overhead added to every data message (PVM header ballpark)
MESSAGE_HEADER_BYTES = 40
#: wire size of small in-channel control payloads (hello/eom/peer_migrating)
CONTROL_PAYLOAD_BYTES = 16


def estimate_nbytes(body: Any) -> int:
    """Approximate encoded size of *body* in bytes (plus header).

    Exact for arrays/bytes/strings (the overwhelmingly common payloads);
    falls back to the codec's true encoded size for anything structured.
    """
    if isinstance(body, np.ndarray):
        return int(body.nbytes) + MESSAGE_HEADER_BYTES
    if isinstance(body, (bytes, bytearray)):
        return len(body) + MESSAGE_HEADER_BYTES
    if isinstance(body, str):
        return len(body.encode("utf-8")) + MESSAGE_HEADER_BYTES
    if isinstance(body, (int, float, complex, bool)) or body is None:
        return 8 + MESSAGE_HEADER_BYTES
    return encoded_size(body) + MESSAGE_HEADER_BYTES

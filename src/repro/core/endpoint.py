"""The migration-supported data-communication endpoint.

:class:`MigrationEndpoint` implements the paper's data communication
algorithms — ``send`` (Fig. 2), ``connect()`` (Fig. 3) and ``recv``
(Fig. 4) — together with the shared message-dispatch machinery that the
process-migration algorithms (:mod:`repro.core.migration`) build on.

Design notes / deviations from the paper's pseudo-code, all behaviour
preserving:

* **Asynchronous connection grant.** The paper's ``grant_connection_to``
  blocks until the requester completes ``make_connection_with``. Here the
  acceptor replies ``conn_ack`` and continues; the requester creates the
  channel and sends a :class:`ChannelHello` as its first (FIFO-first)
  message, which registers the connection at the acceptor. This removes a
  grant/grant cycle when two processes request each other simultaneously.
* **Simultaneous mutual requests** are tie-broken by rank: the lower-rank
  process defers the incoming request until its own request resolves, so
  exactly one channel is created per pair.
* **Stale control messages** (acks for requests that were satisfied by the
  hello path, scheduler replies that arrive after a retry) are ignored by
  token/req-id matching rather than assumed away.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.codec import NATIVE, Architecture
from repro.core.messages import (
    ANY,
    ChannelHello,
    DataMessage,
    EndOfMessage,
    IndirectData,
    InitAbort,
    LookupReply,
    LookupRequest,
    NewProcessReply,
    PeerMigrating,
    PLSnapshot,
    SchedulerAck,
    SIG_DISCONNECT,
    SIG_MIGRATE,
    StateChunk,
    TerminateNotice,
)
from repro.core.pltable import PLTable
from repro.core.recvlist import ReceivedMessageList
from repro.core.streaming import DEFAULT_CHUNK_BYTES, ChunkAssembler
from repro.directory.cache import LocationCache
from repro.core.sizes import CONTROL_PAYLOAD_BYTES, estimate_nbytes
from repro.sim.kernel import TIMEOUT
from repro.sim.trace import KIND_RETRY, KIND_TIMEOUT
from repro.util.errors import (
    DestinationTerminatedError,
    NoSuchProcessError,
    ProtocolError,
)
from repro.util.retry import RetryPolicy
from repro.util.rng import RngStream
from repro.vm.channel import Channel
from repro.vm.ids import Rank, VmId
from repro.vm.messages import ConnAck, ConnNack, ConnReq, ControlEnvelope, Envelope
from repro.vm.process import ProcessContext

__all__ = ["MigrationEndpoint", "EndpointStats", "NORMAL", "MIGRATING",
           "INITIALIZING"]

# endpoint states
NORMAL = "normal"
MIGRATING = "migrating"
INITIALIZING = "initializing"


@dataclass
class EndpointStats:
    """Per-endpoint protocol accounting (drives Tables 1-2 and ablations)."""

    messages_sent: int = 0
    messages_received: int = 0
    bytes_sent: int = 0
    bytes_received: int = 0
    #: virtual time spent inside snow_send / snow_recv
    comm_time: float = 0.0
    conn_reqs_sent: int = 0
    conn_reqs_granted: int = 0
    conn_reqs_rejected: int = 0
    conn_nacks_received: int = 0
    scheduler_consults: int = 0
    #: data messages captured into the list while draining (migration)
    captured_in_transit: int = 0
    #: control messages this endpoint ignored as stale
    stale_ignored: int = 0
    #: re-sends after an unanswered control request (hardened mode)
    retries: int = 0
    #: per-attempt timeouts observed (hardened mode)
    timeouts: int = 0
    extra: dict[str, float] = field(default_factory=dict)


class MigrationEndpoint:
    """Protocol state and operations for one application process.

    Parameters
    ----------
    ctx:
        The process's VM context.
    rank:
        Application-level rank of this process.
    scheduler_vmid:
        Where scheduler RPCs go.
    pl:
        Initial process-location table (copied).
    arch:
        Architecture of this host, used when encoding migration state.
    migration_enabled:
        When ``False`` the endpoint runs "original-code" mode for the
        Table 1 baseline: identical message flow but without the
        migration-layer bookkeeping costs (signal masking, poll hooks).
    transport:
        ``"direct"`` (default) — connection-oriented channels, the mode
        the paper's protocols are built on. ``"indirect"`` — PVM's
        daemon-routed mode: no connections, per-message routing hops;
        migration is unsupported on this path (the transport ablation).
    retry_policy:
        When set, hardens the connectionless control path against the
        fault model of :mod:`repro.sim.faults`: every ``conn_req`` and
        scheduler RPC is re-sent on a timeout per the policy's bounded
        exponential backoff, and gives up with
        :class:`~repro.util.errors.RetryExhausted`. ``None`` (default)
        reproduces the paper's reliable-network assumption: wait forever.
    drain_timeout:
        Bound on the migration drain (Fig. 5 line 6). When the drain does
        not finish within this many virtual seconds the migration is
        aborted and the process resumes normal execution (the scheduler
        may re-issue the request). ``None`` disables the bound.
    directory_client:
        When set (a :class:`~repro.directory.client.DirectoryClient`),
        location consults after a connection rejection go to the
        configured distributed directory backend instead of the
        scheduler; the scheduler remains the authoritative fallback.
        ``None`` (default) is the paper's centralized configuration.
    fastpath:
        ``True`` (default) migrates via the pipelined chunked state
        transfer (:mod:`repro.core.streaming`): collection, network
        transfer and restore overlap in virtual time. ``False`` keeps
        the strictly sequential drain → encode → single-blob send of
        the paper's Fig. 5 (the A/B baseline).
    chunk_bytes:
        ``state_chunk`` payload size for the fast path: a fixed int, or
        an :class:`~repro.core.adaptive.AdaptiveChunkPolicy` to size
        chunks AIMD-style from observed per-chunk ship latency.
    bandwidth_budget:
        Optional :class:`~repro.core.adaptive.BandwidthBudget` shared by
        every transfer leaving this endpoint's host; an adaptive
        migration's :class:`~repro.core.adaptive.ChunkController`
        attaches to it so concurrent windows split the uplink fairly.
    """

    def __init__(self, ctx: ProcessContext, rank: Rank,
                 scheduler_vmid: VmId, pl: PLTable,
                 arch: Architecture = NATIVE,
                 migration_enabled: bool = True,
                 initializing: bool = False,
                 transport: str = "direct",
                 retry_policy: RetryPolicy | None = None,
                 drain_timeout: float | None = None,
                 directory_client=None,
                 fastpath: bool = True,
                 chunk_bytes=DEFAULT_CHUNK_BYTES,
                 bandwidth_budget=None,
                 trace_id: str | None = None):
        if transport not in ("direct", "indirect"):
            raise ProtocolError(f"unknown transport {transport!r}")
        if transport == "indirect" and migration_enabled:
            raise ProtocolError(
                "indirect (daemon-routed) transport carries no migration "
                "support — launch with migratable=False")
        self.transport = transport
        self.ctx = ctx
        self.vm = ctx.vm
        self.kernel = ctx.kernel
        self.rank = rank
        ctx.rank = rank
        self.scheduler_vmid = scheduler_vmid
        self.pl = pl.copy()
        #: optional repro.obs.MetricsRegistry shared VM-wide; when set,
        #: cache/lookup/consult counters and the recvlist scan histogram
        #: are registered there (labelled by actor) instead of living
        #: only in per-endpoint stats objects
        self.metrics = getattr(ctx.vm, "metrics", None)
        #: cache discipline over the PL copy: negative invalidation on
        #: conn_nack, hit/miss accounting for the directory ablation
        self.cache = LocationCache(self.pl, metrics=self.metrics,
                                   actor=ctx.name)
        self.directory_client = directory_client
        self.arch = arch
        self.migration_enabled = migration_enabled
        self.state = INITIALIZING if initializing else NORMAL
        self.retry_policy = retry_policy
        self.drain_timeout = drain_timeout
        self.fastpath = fastpath
        self.chunk_bytes = chunk_bytes
        #: shared per-host fair-share ledger for concurrent transfers
        self.bandwidth_budget = bandwidth_budget
        #: causal trace id of the migration this endpoint participates
        #: in: stamped on span records so source and destination phases
        #: stitch into one trace tree. The destination receives it at
        #: spawn (the scheduler minted it); the source learns it from
        #: the NewProcessReply.
        self.trace_id = trace_id
        #: destination-side reassembly of an in-flight chunked transfer
        self._chunk_assembler: ChunkAssembler | None = None
        #: jitter stream: per-endpoint sub-stream so concurrent retriers
        #: never perturb each other's draws
        self._retry_rng = (RngStream(retry_policy.seed, f"retry/{ctx.name}")
                           if retry_policy is not None else None)

        #: rank -> channel for every established connection (the paper's
        #: ``Connected`` set and ``cc[]`` array in one structure)
        self.connected: dict[Rank, Channel] = {}
        self.recvlist = ReceivedMessageList()
        #: the paper's ``Closed_conn`` coordination counter (Figs. 4, 6)
        self.closed_conn = 0
        self.stats = EndpointStats()
        if self.metrics is not None:
            from repro.obs.metrics import POW2_BUCKETS
            self._m_consults = self.metrics.counter(
                "endpoint.scheduler_consults", actor=ctx.name)
            self._m_sent = self.metrics.counter(
                "endpoint.msgs_sent", actor=ctx.name)
            self._m_recv = self.metrics.counter(
                "endpoint.msgs_recv", actor=ctx.name)
            self.recvlist.scan_hook = self.metrics.histogram(
                "endpoint.recvlist_scan", bounds=POW2_BUCKETS,
                actor=ctx.name).record
            # same gauge names as the mp runtime, so one report renders
            # either backend's artifact
            self._g_qdepth = self.metrics.gauge("mp.queue_depth",
                                                actor=ctx.name)
            self._g_links = self.metrics.gauge("mp.live_links",
                                               actor=ctx.name)

        self.migration_requested = False
        #: set by migration code while draining; ChannelHello arrivals
        #: during the drain join this set (late-connecting peers)
        self._drain_waiting: set[Rank] | None = None
        self._drain_coordinate: Callable[[Rank, Channel], None] | None = None

        self._req_ids = itertools.count(1)
        self._tokens = itertools.count(1)
        #: (req_id, dest) of the connection request in flight, if any
        self._outstanding: tuple[int, Rank] | None = None
        self._deferred_reqs: list[ControlEnvelope] = []
        #: conn_reqs an initializing endpoint is holding until restore
        #: completes (only with a drain timeout — see _handle_conn_req)
        self._init_deferred: list[ControlEnvelope] = []
        #: grants we have acked whose ChannelHello has not yet arrived;
        #: the migration drain must wait these out or their first data
        #: message could arrive after this process terminated
        self._pending_grants: dict[Rank, int] = {}
        #: every ack ever sent, keyed (requester vmid, req_id): a
        #: retransmitted conn_req is answered with the *same* ack instead
        #: of granting a second channel (idempotent dispatch)
        self._acked_reqs: dict[tuple[VmId, int], ConnAck] = {}

        if migration_enabled:
            ctx.on_signal(SIG_MIGRATE, self._on_migrate_signal)
            ctx.on_signal(SIG_DISCONNECT, self._on_disconnect_signal)

    # ------------------------------------------------------------------
    # public API: the paper's send / recv operations
    # ------------------------------------------------------------------
    def snow_send(self, dest: Rank, body: Any, tag: int = 0,
                  nbytes: int | None = None) -> None:
        """Blocking buffered-mode send (paper Fig. 2).

        Establishes a connection on demand; returns once the payload is
        copied to the underlying protocol's buffers.
        """
        if dest == self.rank:
            raise ProtocolError("cannot send to self")
        t0 = self.kernel.now
        self._enter_comm_event()
        try:
            if nbytes is None:
                nbytes = estimate_nbytes(body)
            msg = DataMessage(src=self.rank, tag=tag, body=body,
                              nbytes=nbytes, sent_at=self.kernel.now)
            if self.transport == "indirect":
                # PVM indirect mode: pack into OS buffers, then route via
                # the daemons — no channel, hop costs per message
                self.ctx.burn(self.vm.costs.send_cost(nbytes))
                self.ctx.route_control(self.pl.lookup(dest),
                                       IndirectData(msg), nbytes=nbytes)
            else:
                if dest not in self.connected:
                    self.connect(dest)
                self.connected[dest].send(self.ctx, msg, nbytes)
            self.stats.messages_sent += 1
            self.stats.bytes_sent += nbytes
            if self.metrics is not None:
                self._m_sent.inc()
            self.vm.trace_record(self.ctx.name, "snow_send", dest=dest,
                                 tag=tag, nbytes=nbytes)
        finally:
            self._leave_comm_event()
            self.stats.comm_time += self.kernel.now - t0

    def snow_recv(self, src: Rank | None = ANY, tag: int | None = ANY
                  ) -> DataMessage:
        """Blocking receive with PVM-style wildcards (paper Fig. 4).

        Searches the received-message-list first; otherwise pulls new
        messages, dispatching control traffic (connection requests,
        ``peer_migrating``) as it goes and buffering unwanted data.
        """
        t0 = self.kernel.now
        self._enter_comm_event()
        try:
            while True:
                self._charge_list_search()
                msg = self.recvlist.find(src, tag)
                if msg is not None:
                    self.stats.messages_received += 1
                    self.stats.bytes_received += msg.nbytes
                    if self.metrics is not None:
                        self._m_recv.inc()
                    self.vm.trace_record(self.ctx.name, "snow_recv",
                                         src=msg.src, tag=msg.tag,
                                         nbytes=msg.nbytes,
                                         sent_at=msg.sent_at)
                    return msg
                item = self.ctx.next_message()
                self.dispatch(item)
        finally:
            self._leave_comm_event()
            self.stats.comm_time += self.kernel.now - t0

    def probe(self, src: Rank | None = ANY, tag: int | None = ANY) -> bool:
        """Non-destructively check the received-message-list for a match."""
        return any(m.matches(src, tag) for m in self.recvlist)

    # ------------------------------------------------------------------
    # connection establishment (paper Fig. 3)
    # ------------------------------------------------------------------
    def connect(self, dest: Rank) -> Channel:
        """Establish (or discover) a channel to *dest*.

        Terminates when connected, or raises
        :class:`DestinationTerminatedError` if the scheduler reports the
        destination gone (Fig. 3 line 13).
        """
        if dest == self.rank:
            raise ProtocolError("cannot connect to self")
        attempts = 0
        while dest not in self.connected:
            attempts += 1
            if attempts > 100:
                raise ProtocolError(
                    f"connect({dest}) did not converge after {attempts - 1} "
                    "attempts")
            req_id = next(self._req_ids)
            self._outstanding = (req_id, dest)
            self.stats.conn_reqs_sent += 1
            self._send_conn_req(req_id, dest)
            try:
                self._await_conn_response(req_id, dest)
            finally:
                self._outstanding = None
        self._flush_deferred()
        return self.connected[dest]

    def _send_conn_req(self, req_id: int, dest: Rank) -> None:
        """(Re-)send one connection request; the target is looked up fresh
        so a resend after a PL update chases the process's new location."""
        target = self.cache.resolve(dest)
        if target is None:
            target = self.pl.lookup(dest)  # raises ProtocolError
        self.vm.trace_record(self.ctx.name, "conn_req_sent", dest=dest,
                             req_id=req_id, target=str(target))
        self.ctx.route_control(
            target, ConnReq(req_id=req_id, src_rank=self.rank,
                            src_vmid=self.ctx.vmid))

    def _await_conn_response(self, req_id: int, dest: Rank) -> None:
        """Wait until our request resolves or a hello connects us.

        With a retry policy the wait is bounded per attempt: an unanswered
        request is re-sent with the *same* req_id (the acceptor dedups),
        and after ``max_attempts`` unanswered sends the operation raises
        :class:`~repro.util.errors.RetryExhausted`.
        """
        policy = self.retry_policy
        delays = policy.delays(self._retry_rng) if policy is not None else None
        deadline = (self.kernel.now + next(delays)
                    if delays is not None else None)
        attempt = 1
        t0 = self.kernel.now
        while self._outstanding is not None and dest not in self.connected:
            timeout = (None if deadline is None
                       else max(0.0, deadline - self.kernel.now))
            item = self.ctx.next_message(timeout=timeout)
            if item is TIMEOUT:
                self.stats.timeouts += 1
                self.vm.trace_record(self.ctx.name, KIND_TIMEOUT,
                                     what="conn_req", dest=dest,
                                     req_id=req_id, attempt=attempt)
                if attempt >= policy.max_attempts:
                    raise policy.exhausted(f"conn_req to rank {dest}",
                                           self.kernel.now - t0)
                attempt += 1
                self.stats.retries += 1
                self.vm.trace_record(self.ctx.name, KIND_RETRY,
                                     what="conn_req", dest=dest,
                                     req_id=req_id, attempt=attempt)
                self._send_conn_req(req_id, dest)
                deadline = self.kernel.now + next(delays)
                continue
            msg = item.msg if isinstance(item, ControlEnvelope) else None
            if isinstance(msg, ConnAck) and msg.req_id == req_id:
                self._outstanding = None
                if dest not in self.connected:
                    self._make_connection(dest, msg.acceptor_vmid)
                return
            if isinstance(msg, ConnNack) and msg.req_id == req_id:
                self._outstanding = None
                self.stats.conn_nacks_received += 1
                self.vm.trace_record(self.ctx.name, "conn_nack_received",
                                     dest=dest, reason=msg.reason)
                # The nack disproved the cached location: mark it stale
                # before consulting (negative invalidation).
                self.cache.invalidate(dest)
                status, vmid = self.consult_scheduler(dest)
                if status == "terminated" or vmid is None:
                    raise DestinationTerminatedError(
                        f"rank {dest} has terminated")
                # Fig. 3 line 12: update the PL table and retry.
                self.cache.refresh(dest, vmid)
                return
            self.dispatch(item)

    def _make_connection(self, dest: Rank, acceptor_vmid: VmId) -> None:
        """The paper's ``make_connection_with``: create the channel."""
        self.ctx.burn(self.vm.costs.connect_setup)
        try:
            chan = self.vm.create_channel(self.ctx.vmid, acceptor_vmid)
        except NoSuchProcessError:
            # Acceptor vanished between ack and establishment: treat like a
            # rejection — consult the scheduler and let connect() retry.
            self.cache.invalidate(dest)
            status, vmid = self.consult_scheduler(dest)
            if status == "terminated" or vmid is None:
                raise DestinationTerminatedError(
                    f"rank {dest} has terminated") from None
            self.cache.refresh(dest, vmid)
            return
        self.connected[dest] = chan
        self.pl.update(dest, acceptor_vmid)
        chan.send(self.ctx, ChannelHello(self.rank), CONTROL_PAYLOAD_BYTES)
        self.vm.trace_record(self.ctx.name, "connected", dest=dest,
                             channel=chan.id, initiator=True)

    def consult_scheduler(self, dest: Rank) -> tuple[str, VmId | None]:
        """Ask the location directory for ``(exe status, vmid)`` of *dest*.

        With a distributed backend configured the consult goes to the
        directory client (which falls back to the scheduler if the
        directory cannot answer); otherwise straight to the scheduler —
        the paper's configuration.
        """
        if self.directory_client is not None:
            self.vm.trace_record(self.ctx.name, "directory_consult",
                                 dest=dest,
                                 backend=self.directory_client.backend)
            return self.directory_client.lookup(self, dest)
        token = next(self._tokens)
        self.stats.scheduler_consults += 1
        if self.metrics is not None:
            self._m_consults.inc()
        self.vm.trace_record(self.ctx.name, "scheduler_consult", dest=dest,
                             token=token)
        item = self.request_reply(
            self.scheduler_vmid,
            LookupRequest(rank=dest, reply_to=self.ctx.vmid, token=token),
            lambda it: isinstance(it, ControlEnvelope)
            and isinstance(it.msg, LookupReply) and it.msg.token == token,
            what="lookup")
        reply: LookupReply = item.msg
        self.vm.trace_record(self.ctx.name, "scheduler_reply", dest=dest,
                             status=reply.status,
                             vmid=str(reply.vmid) if reply.vmid else None)
        return reply.status, reply.vmid

    def request_reply(self, dest_vmid: VmId, msg: Any,
                      pred: Callable[[Any], bool], what: str) -> Any:
        """Send *msg* to *dest_vmid* and pump until *pred* matches a reply.

        Without a retry policy this waits forever (the paper's reliable
        network). With one, each unanswered attempt re-sends the *same*
        message after a backoff timeout — receivers are idempotent, so a
        duplicate request just earns a duplicate reply — and the operation
        raises :class:`~repro.util.errors.RetryExhausted` after the
        attempt budget is spent.
        """
        policy = self.retry_policy
        self.ctx.route_control(dest_vmid, msg)
        if policy is None:
            return self.pump_until(pred)
        t0 = self.kernel.now
        attempt = 0
        for delay in policy.delays(self._retry_rng):
            attempt += 1
            item = self.pump_until(pred, timeout=delay)
            if item is not TIMEOUT:
                return item
            self.stats.timeouts += 1
            self.vm.trace_record(self.ctx.name, KIND_TIMEOUT, what=what,
                                 attempt=attempt)
            if attempt < policy.max_attempts:
                self.stats.retries += 1
                self.vm.trace_record(self.ctx.name, KIND_RETRY, what=what,
                                     attempt=attempt + 1)
                self.ctx.route_control(dest_vmid, msg)
        raise policy.exhausted(what, self.kernel.now - t0)

    # ------------------------------------------------------------------
    # message dispatch
    # ------------------------------------------------------------------
    def pump_until(self, pred: Callable[[Any], bool],
                   timeout: float | None = None) -> Any:
        """Receive mailbox items, dispatching until *pred* matches one.

        The matching item is returned *without* being dispatched. With a
        *timeout* the wait is bounded by a deadline ``now + timeout``
        covering the whole pump (not each message), and the
        :data:`~repro.sim.kernel.TIMEOUT` sentinel is returned on expiry.
        """
        deadline = None if timeout is None else self.kernel.now + timeout
        while True:
            remaining = None
            if deadline is not None:
                remaining = deadline - self.kernel.now
                if remaining <= 0:
                    return TIMEOUT
            item = self.ctx.next_message(timeout=remaining)
            if item is TIMEOUT:
                return TIMEOUT
            if pred(item):
                return item
            self.dispatch(item)

    def dispatch(self, item: Any) -> None:
        """Process one mailbox item that no specific wait claimed.

        This is the shared behaviour behind the paper's recv loop (Fig. 4
        lines 6-15), connect()'s side work (Fig. 3 lines 6-8), and the
        initialization algorithm's "keep accepting" clause (Fig. 7).
        """
        if isinstance(item, Envelope):
            self._dispatch_envelope(item)
        elif isinstance(item, ControlEnvelope):
            self._dispatch_control(item)
        else:
            raise ProtocolError(f"unknown mailbox item {item!r}")

    def _dispatch_envelope(self, env: Envelope) -> None:
        p = env.payload
        if isinstance(p, DataMessage):
            self.recvlist.append(p)
            if self.state == MIGRATING:
                self.stats.captured_in_transit += 1
                self.vm.trace_record(self.ctx.name, "captured_in_transit",
                                     src=p.src, nbytes=p.nbytes)
        elif isinstance(p, ChannelHello):
            self._register_channel(env, p)
        elif isinstance(p, PeerMigrating):
            self._handle_peer_migrating(env, p)
        elif isinstance(p, EndOfMessage):
            self._handle_end_of_message(env, p)
        elif isinstance(p, StateChunk):
            self._absorb_chunk(p)
        else:
            raise ProtocolError(
                f"unexpected channel payload {type(p).__name__} in state "
                f"{self.state}")

    def _dispatch_control(self, env: ControlEnvelope) -> None:
        msg = env.msg
        if isinstance(msg, ConnReq):
            self._handle_conn_req(env)
        elif isinstance(msg, (ConnAck, ConnNack)):
            # A response to a request that was already satisfied (e.g. via
            # the hello path) — matched responses are consumed in
            # _await_conn_response.
            self.stats.stale_ignored += 1
            self.vm.trace_record(self.ctx.name, "stale_control",
                                 msg=type(msg).__name__, req_id=msg.req_id)
        elif isinstance(msg, IndirectData):
            self.recvlist.append(msg.message)
        elif isinstance(msg, (LookupReply, NewProcessReply, PLSnapshot,
                              SchedulerAck, InitAbort)):
            # Scheduler traffic that no specific wait claimed: a reply to a
            # request that was already answered (duplicate or late after a
            # retry). Receivers are idempotent, so dropping it is safe.
            self.stats.stale_ignored += 1
            self.vm.trace_record(self.ctx.name, "stale_control",
                                 msg=type(msg).__name__)
        else:
            raise ProtocolError(f"unexpected control message {msg!r}")

    # -- connection request handling --------------------------------------
    def _handle_conn_req(self, env: ControlEnvelope) -> None:
        msg: ConnReq = env.msg
        ack = self._acked_reqs.get((env.src_vmid, msg.req_id))
        if ack is not None:
            # Retransmit of a request we already granted (our ack was lost
            # or is still in flight): re-send the *same* ack — no second
            # grant, no stats, no new pending-grant obligation. Checked
            # before the MIGRATING rejection on purpose: the original
            # grant is still counted in _pending_grants, so nacking the
            # retransmit would leave the drain waiting for a hello the
            # requester will never send.
            self.vm.trace_record(self.ctx.name, "conn_req_dup",
                                 src=msg.src_rank, req_id=msg.req_id)
            self.ctx.route_control(env.src_vmid, ack)
            return
        if self.state == INITIALIZING and self.drain_timeout is not None:
            # Abort is possible in this configuration. Granting now would
            # let peers deliver data that is stranded (lost) if the
            # migration is abandoned, so hold the request until restore
            # completes; if this process instead terminates on an abort,
            # the daemon nacks the recorded requests on its behalf.
            if not self._already_deferred(env):
                self._init_deferred.append(env)
                self.vm.trace_record(self.ctx.name, "conn_req_deferred",
                                     src=msg.src_rank, req_id=msg.req_id)
            return
        if self.state == MIGRATING:
            # Fig. 5 line 4: requests that already reached the migrating
            # process are rejected; the requester will consult the
            # scheduler and redirect to the initialized process.
            self.stats.conn_reqs_rejected += 1
            self.vm.trace_record(self.ctx.name, "conn_req_rejected",
                                 src=msg.src_rank, req_id=msg.req_id)
            self.ctx.route_control(
                env.src_vmid, ConnNack(msg.req_id, reason="migrating"))
            return
        if msg.src_rank in self.connected:
            # We already initiated this connection and our ChannelHello is
            # in flight to the requester; when it arrives their connect()
            # loop observes the established channel and stops waiting.
            # Granting here instead would race the hello into a duplicate
            # channel. (The daemon's request record is cleaned up by the
            # usual termination path.)
            self.vm.trace_record(self.ctx.name, "conn_req_ignored",
                                 src=msg.src_rank, req_id=msg.req_id,
                                 reason="already-connected")
            return
        if (self._outstanding is not None
                and self._outstanding[1] == msg.src_rank
                and self.rank < msg.src_rank):
            # Mutual simultaneous request: the lower rank waits for its own
            # request to be acked; the peer's request is answered after.
            # A retransmitted copy must not be queued twice — the double
            # grant would strand a pending-grant count the drain waits on.
            if not self._already_deferred(env):
                self._deferred_reqs.append(env)
            return
        self._grant(env)

    def _grant(self, env: ControlEnvelope) -> None:
        """The paper's ``grant_connection_to``: accept a request."""
        msg: ConnReq = env.msg
        self.stats.conn_reqs_granted += 1
        self._pending_grants[msg.src_rank] = \
            self._pending_grants.get(msg.src_rank, 0) + 1
        ack = ConnAck(msg.req_id, acceptor_rank=self.rank,
                      acceptor_vmid=self.ctx.vmid)
        self._acked_reqs[(env.src_vmid, msg.req_id)] = ack
        self.vm.trace_record(self.ctx.name, "conn_req_granted",
                             src=msg.src_rank, req_id=msg.req_id)
        self.ctx.route_control(env.src_vmid, ack)

    def _already_deferred(self, env: ControlEnvelope) -> bool:
        return any(d.src_vmid == env.src_vmid
                   and d.msg.req_id == env.msg.req_id
                   for d in self._deferred_reqs + self._init_deferred)

    def _flush_deferred(self) -> None:
        while self._deferred_reqs:
            self._handle_conn_req(self._deferred_reqs.pop(0))

    def flush_init_deferred(self) -> None:
        """Grant the conn_reqs held while initializing (restore is done)."""
        while self._init_deferred:
            self._handle_conn_req(self._init_deferred.pop(0))

    def _absorb_chunk(self, chunk: StateChunk) -> None:
        """Fold one ``state_chunk`` into the assembler (destination side).

        Restore cost is charged per chunk *as it arrives* — this is the
        overlap the pipelined transfer buys: by the time the last chunk
        lands, most of the restore work has already been paid for in
        virtual time, concurrently with collection and transfer on the
        source side.
        """
        asm = self._chunk_assembler
        if asm is None:
            asm = self._chunk_assembler = ChunkAssembler()
        costs = self.vm.costs
        seconds = chunk.nbytes * costs.state_restore_per_byte
        if chunk.seq == 0:
            seconds += costs.state_fixed
        asm.add(chunk)
        t0 = self.kernel.now
        self.ctx.burn(seconds)
        asm.restore_seconds += self.kernel.now - t0

    def pending_grant_count(self) -> int:
        """Grants acked but whose channel is not yet established."""
        return sum(self._pending_grants.values())

    def _register_channel(self, env: Envelope, hello: ChannelHello) -> None:
        chan = self.vm.channels.get(env.channel_id)
        if chan is None:
            raise ProtocolError(f"hello on unknown channel {env.channel_id}")
        if hello.src_rank in self.connected:
            raise ProtocolError(
                f"duplicate channel to rank {hello.src_rank}")
        self.connected[hello.src_rank] = chan
        self.pl.update(hello.src_rank, env.src_vmid)
        # A hello from this rank retires *every* grant held for it: the
        # requester establishes exactly one channel per connect() and any
        # other req_ids it sent (retransmits, abandoned attempts) will
        # never produce a hello of their own.
        self._pending_grants.pop(hello.src_rank, None)
        self.vm.trace_record(self.ctx.name, "connected",
                             dest=hello.src_rank, channel=chan.id,
                             initiator=False)
        if self._drain_waiting is not None and self._drain_coordinate:
            # A peer completed establishment just as we started migrating:
            # coordinate it like every other connected peer.
            self._drain_coordinate(hello.src_rank, chan)

    # -- migration coordination on the peer side ----------------------------
    def _handle_peer_migrating(self, env: Envelope, pm: PeerMigrating) -> None:
        """Fig. 4 lines 12-14 (and the drain's simultaneous-migration case)."""
        rank = pm.src_rank
        chan = self.connected.pop(rank, None)
        if chan is None:
            self.vm.trace_record(self.ctx.name, "stale_peer_migrating",
                                 src=rank)
            return
        if self._drain_waiting is not None:
            # We are migrating too: their peer_migrating is their last
            # message; ours was already sent. Just close and account.
            chan.close_end(self.ctx.vmid)
            self._drain_waiting.discard(rank)
            self.vm.trace_record(self.ctx.name, "simultaneous_coordination",
                                 peer=rank)
            return
        # Reception implies all earlier messages on the channel have been
        # received (FIFO). Reply with our last message and close.
        chan.send(self.ctx, EndOfMessage(self.rank), CONTROL_PAYLOAD_BYTES)
        chan.close_end(self.ctx.vmid)
        self.closed_conn += 1
        self.vm.trace_record(self.ctx.name, "peer_coordination_done",
                             peer=rank)

    def _handle_end_of_message(self, env: Envelope, eom: EndOfMessage) -> None:
        rank = eom.src_rank
        chan = self.connected.pop(rank, None)
        if chan is not None:
            chan.close_end(self.ctx.vmid)
        if self._drain_waiting is not None:
            # Migration drain: this peer's last message has arrived —
            # whether it was coordinated or terminated on its own.
            self._drain_waiting.discard(rank)
            self.vm.trace_record(self.ctx.name, "drain_peer_done", peer=rank)
        else:
            # Orderly teardown: the peer terminated and closed the channel
            # (its in-band FIN); everything it sent has been received.
            self.vm.trace_record(self.ctx.name, "peer_closed", peer=rank)

    # ------------------------------------------------------------------
    # signal handlers
    # ------------------------------------------------------------------
    def _on_migrate_signal(self) -> None:
        """SIG_MIGRATE: note the request; acted on at the next poll point."""
        self.migration_requested = True
        self.vm.trace_record(self.ctx.name, "migration_signal_noted")

    def _on_disconnect_signal(self) -> None:
        """The paper's disconnection_handler() (Fig. 6).

        ``closed_conn`` bookkeeping prevents repeating coordination that a
        concurrent recv already performed: each processed ``peer_migrating``
        banks one credit; each disconnection signal consumes one, pumping
        messages only when no credit is banked.
        """
        self.vm.trace_record(self.ctx.name, "disconnection_handler")
        while self.closed_conn == 0:
            item = self.ctx.next_message()
            self.dispatch(item)
        self.closed_conn -= 1

    # ------------------------------------------------------------------
    # cost accounting helpers
    # ------------------------------------------------------------------
    def _enter_comm_event(self) -> None:
        if self.migration_enabled:
            self.ctx.hold_signals()
            self.ctx.burn(self.vm.costs.protocol_layer_per_call)

    def _leave_comm_event(self) -> None:
        if self.migration_enabled:
            self.ctx.release_signals()

    def _charge_list_search(self) -> None:
        c = self.vm.costs
        self.ctx.burn(c.list_fixed + len(self.recvlist) * c.list_scan_per_entry)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def poll_migration(self, state: dict) -> None:
        """The migration macro inserted at poll points (paper Section 5.2).

        If a migration request signal has been intercepted, runs the
        migration algorithm — which never returns (the process terminates
        on this host and resumes from *state* on the destination).
        """
        if self.metrics is not None:
            self._g_qdepth.set(len(self.recvlist))
            self._g_links.set(len(self.connected))
        if not self.migration_enabled:
            return
        self.ctx.check_signals()
        if self.migration_requested:
            from repro.core.migration import run_migration
            run_migration(self, state)

    def shutdown(self) -> None:
        """Orderly completion.

        Sends ``end_of_message`` on every open channel (the in-band FIN a
        migrating or receiving peer relies on to know no more data is
        coming) and tells the scheduler this rank is done.
        """
        for rank, chan in list(self.connected.items()):
            if chan.is_open_for(self.ctx.vmid):
                chan.send(self.ctx, EndOfMessage(self.rank),
                          CONTROL_PAYLOAD_BYTES)
                chan.close_end(self.ctx.vmid)
        self.connected.clear()
        if self.retry_policy is None:
            self.ctx.route_control(self.scheduler_vmid,
                                   TerminateNotice(self.rank))
        else:
            # A lost terminate notice would leave the scheduler advertising
            # a stale location forever, so in hardened mode the notice is
            # retried until acknowledged.
            self.request_reply(
                self.scheduler_vmid, TerminateNotice(self.rank, ack=True),
                lambda it: isinstance(it, ControlEnvelope)
                and isinstance(it.msg, SchedulerAck)
                and it.msg.kind == "terminate" and it.msg.rank == self.rank,
                what="terminate_notice")
        self.vm.trace_record(self.ctx.name, "rank_finished", rank=self.rank)

"""Semi-automatic migration enabling (the HPCM compilation-system analogue).

The paper's future work plans "a compilation system to support
semi-automatic process migration": SNOW's compiler selects poll points
and inserts the migration macros into the source. The Python analogue:
the programmer writes a *step function* over an explicit state dict, and
:func:`make_migratable` assembles the migration-enabled program —
initializing the state on a fresh start and polling for migration at
every step boundary, so the programmer never touches ``poll_migration``.

Example::

    def init(api):
        return {"i": 0, "acc": 0}

    def step(api, state):           # one unit of resumable work
        state["acc"] += api.recv(src=0).body
        state["i"] += 1
        return state["i"] < 100     # False = done

    program = make_migratable(step, init)
    Application(vm, program, ...)
"""

from __future__ import annotations

from typing import Any, Callable

from repro.core.api import Program, SnowAPI

__all__ = ["make_migratable", "migratable"]

#: marks a state dict as initialized by the wrapper
_INIT_KEY = "__autopoll_initialized__"

StepFn = Callable[[SnowAPI, dict], bool]
InitFn = Callable[[SnowAPI], dict]


def make_migratable(step: StepFn, init: InitFn | None = None,
                    finish: Callable[[SnowAPI, dict], Any] | None = None
                    ) -> Program:
    """Build a migration-enabled program from a step function.

    Parameters
    ----------
    step:
        ``step(api, state) -> bool`` performs one resumable unit of work
        and returns ``True`` while more work remains. A migration poll
        point runs after every step (the "compiler-inserted macro").
    init:
        ``init(api) -> dict`` produces the initial state on a fresh start
        (not called again after a migration).
    finish:
        Optional completion hook, ``finish(api, state)``.
    """

    def program(api: SnowAPI, state: dict) -> None:
        if not state.get(_INIT_KEY):
            if init is not None:
                fresh = init(api)
                if not isinstance(fresh, dict):
                    raise TypeError(
                        f"init must return a dict, got "
                        f"{type(fresh).__name__}")
                state.update(fresh)
            state[_INIT_KEY] = True
        while step(api, state):
            api.poll_migration(state)
        if finish is not None:
            finish(api, state)

    program.__name__ = f"migratable({getattr(step, '__name__', 'step')})"
    return program


def migratable(init: InitFn | None = None,
               finish: Callable[[SnowAPI, dict], Any] | None = None
               ) -> Callable[[StepFn], Program]:
    """Decorator form of :func:`make_migratable`::

        @migratable(init=lambda api: {"i": 0})
        def program(api, state):
            ...
            return state["i"] < 100
    """

    def wrap(step: StepFn) -> Program:
        return make_migratable(step, init=init, finish=finish)

    return wrap

"""The process-migration algorithms (paper Figs. 5 and 7).

:func:`run_migration` executes on the migrating process (triggered from a
poll point once the migration-request signal has been intercepted) and
:func:`run_initialization` on the initialized process waiting on the
destination host. The two run concurrently and communicate over a direct
state-transfer channel — the prototype shipped execution/memory state over
raw TCP outside PVM, which is why those transfers do not appear as PVM
message lines in the paper's XPVM diagrams; we trace them as dedicated
``state_*`` events instead.

Trace events emitted here (consumed by the analysis layer to regenerate
the paper's Tables 1-2 and Figures 10-13):

``migration_start``, ``coordinate_done``, ``recvlist_sent``,
``collect_done``, ``state_sent``, ``migration_source_done`` on the source;
``init_start``, ``recvlist_received``, ``state_received``,
``restore_done``, ``migration_commit`` on the destination.

In addition, the migration lifecycle is bracketed by ``span_start`` /
``span_end`` events carrying the frozen phase names of
:mod:`repro.obs.events` (``freeze``, ``reject``, ``drain``,
``transfer`` on the source; ``restore``, ``commit`` on the
destination) — the same vocabulary the multiprocess runtime writes
into its JSONL artifacts, so one report renderer serves both.
"""

from __future__ import annotations

from typing import Any

from repro.codec import encode, decode
from repro.core.endpoint import MIGRATING, NORMAL, MigrationEndpoint
from repro.core.messages import (
    ExeMemState,
    InitAbort,
    LookupReply,
    LookupRequest,
    MigrationAbort,
    MigrationCommit,
    MigrationStart,
    NewProcessReply,
    PeerMigrating,
    PLSnapshot,
    RecvListTransfer,
    RestoreComplete,
    SchedulerAck,
    SIG_DISCONNECT,
    StateChunk,
)
from repro.core.adaptive import AdaptiveChunkPolicy, ChunkController
from repro.core.sizes import CONTROL_PAYLOAD_BYTES, MESSAGE_HEADER_BYTES
from repro.core.streaming import ChunkSource
from repro.sim.kernel import TIMEOUT
from repro.sim.trace import KIND_TIMEOUT
from repro.util.errors import MigrationError
from repro.vm.channel import Channel
from repro.vm.ids import Rank
from repro.vm.messages import ControlEnvelope, Envelope

__all__ = ["run_migration", "run_initialization"]

#: Parent phase of each span in the migration trace tree: freeze is the
#: root; reject brackets the whole source-side window under it; drain
#: and transfer run inside reject; the destination's restore hangs off
#: transfer and commit off restore — same shape the mp runtime stamps.
_SPAN_PARENT = {"reject": "freeze", "drain": "reject", "transfer": "reject",
                "restore": "transfer", "commit": "restore"}


def _tctx(ep: MigrationEndpoint, phase: str) -> dict:
    """Trace-context fields for *phase*'s span records (empty when the
    endpoint has no trace id yet)."""
    if ep.trace_id is None:
        return {}
    fields: dict = {"trace_id": ep.trace_id}
    parent = _SPAN_PARENT.get(phase)
    if parent is not None:
        fields["parent"] = parent
    return fields


def run_migration(ep: MigrationEndpoint, state: dict) -> None:
    """The migrate() algorithm on the migrating process (Fig. 5).

    Normally never returns: the process terminates once state transfer
    completes. The one exception is a bounded drain (``ep.drain_timeout``)
    that expires — the migration is then aborted, the process reverts to
    normal execution and this function *returns*, so the caller resumes
    the program where it left off (the scheduler may retry later).
    """
    ctx = ep.ctx
    vm = ep.vm
    kernel = ep.kernel
    ep.migration_requested = False
    # Migration is one long communication event: the disconnection
    # handler must not run inside it (we coordinate explicitly below).
    ctx.hold_signals()
    t_start = kernel.now
    vm.trace_record(ctx.name, "migration_start", rank=ep.rank,
                    old_vmid=str(ctx.vmid))

    # Lines 2-3: inform the scheduler and obtain the initialized process's
    # vmid (the scheduler created it before signalling us). The reply also
    # carries the scheduler-minted trace id; the freeze span_start is
    # recorded retroactively at t_start so it carries the id too.
    reply_env = _scheduler_rpc(
        ep, MigrationStart(rank=ep.rank, old_vmid=ctx.vmid),
        lambda m: isinstance(m, NewProcessReply) and m.rank == ep.rank)
    new_vmid = reply_env.msg.new_vmid
    if ep.trace_id is None:
        ep.trace_id = getattr(reply_env.msg, "trace_id", None)
    vm.trace.record_at(t_start, ctx.name, "span_start", phase="freeze",
                       rank=ep.rank, **_tctx(ep, "freeze"))
    ep.state = MIGRATING
    vm.trace_record(ctx.name, "span_end", phase="freeze", rank=ep.rank,
                    seconds=kernel.now - t_start, **_tctx(ep, "freeze"))

    # Line 4: the local daemon rejects conn_reqs arriving beyond this
    # point; requests already in our mailbox are rejected as we drain
    # (dispatch nacks them in the MIGRATING state).
    t_reject0 = kernel.now
    vm.trace_record(ctx.name, "span_start", phase="reject", rank=ep.rank,
                    **_tctx(ep, "reject"))
    vm.daemon(ctx.host).reject_future_conn_reqs(ctx.vmid.pid)

    # Fast path: the transfer channel opens *now* (the initialized process
    # already exists) so state collection can interleave with the drain —
    # whenever the mailbox is idle, the next state_chunk is collected and
    # shipped instead of just waiting on in-transit messages. Collection,
    # network transfer and destination-side restore then overlap in
    # virtual time; the chunk stream is byte-identical to the single blob
    # the sequential path sends.
    xfer: Channel | None = None
    source: ChunkSource | None = None
    controller: ChunkController | None = None
    collect_seconds = 0.0
    if ep.fastpath:
        xfer = vm.create_channel(ctx.vmid, new_vmid)
        sizer = ep.chunk_bytes
        if isinstance(sizer, AdaptiveChunkPolicy):
            # a fresh controller per migration attempt: a retry after an
            # abort starts from the policy's initial size again. The
            # controller holds a slot in the host's shared bandwidth
            # budget for the life of the transfer, so concurrent windows
            # leaving this host split the uplink fairly.
            controller = ChunkController(sizer, budget=ep.bandwidth_budget)
            sizer = controller
        source = ChunkSource(state, ep.arch, sizer)

    def send_next_chunk() -> None:
        nonlocal collect_seconds
        chunk = source.next_chunk()
        costs = vm.costs
        seconds = chunk.nbytes * costs.state_collect_per_byte
        if chunk.seq == 0:
            seconds += costs.state_fixed
        t0 = kernel.now
        ctx.burn(seconds)
        collect_seconds += kernel.now - t0
        arrival = xfer.send(ctx, chunk, chunk.nbytes)
        if controller is not None:
            # ship latency in virtual time, link-queue wait included —
            # a backed-up transfer link reads as high latency and the
            # controller backs the chunk size off toward the floor
            controller.observe(chunk.nbytes, max(0.0, arrival - kernel.now))

    # Line 5: coordinate every connected peer — disconnection signal plus
    # peer_migrating as our last message on each channel.
    t_coord0 = kernel.now
    vm.trace_record(ctx.name, "span_start", phase="drain", rank=ep.rank,
                    **_tctx(ep, "drain"))
    waiting: set[Rank] = set()
    ep._drain_waiting = waiting

    def coordinate(rank: Rank, chan: Channel) -> None:
        ctx.send_signal(chan.peer_of(ctx.vmid), SIG_DISCONNECT)
        chan.send(ctx, PeerMigrating(ep.rank), CONTROL_PAYLOAD_BYTES)
        chan.close_end(ctx.vmid)
        waiting.add(rank)
        vm.trace_record(ctx.name, "peer_coordinated", peer=rank)

    ep._drain_coordinate = coordinate
    for rank, chan in list(ep.connected.items()):
        coordinate(rank, chan)

    # Line 6: drain — receive everything still in transit into the
    # received-message-list until each coordinated peer's last message
    # (end_of_message, or peer_migrating if it is migrating too) arrives.
    # Grants whose ChannelHello is still in flight are waited out too: the
    # hello registers the channel, which coordinate() then handles like any
    # other connected peer. With a drain timeout, a drain that cannot
    # finish (e.g. a grant abandoned because its ack was lost) aborts the
    # migration instead of waiting forever.
    drain_deadline = (kernel.now + ep.drain_timeout
                      if ep.drain_timeout is not None else None)
    while waiting or ep.pending_grant_count() > 0:
        remaining = None
        if drain_deadline is not None:
            remaining = drain_deadline - kernel.now
            if remaining <= 0:
                _abort_migration(ep, waiting, xfer,
                                 span_t0={"reject": t_reject0,
                                          "drain": t_coord0},
                                 controller=controller)
                return
        if source is not None and not source.exhausted \
                and not len(ctx.mailbox):
            # Nothing to drain right now: spend the wait collecting and
            # shipping state instead of idling (the pipelined overlap).
            # Messages arriving during the chunk's burn are picked up on
            # the next iteration.
            send_next_chunk()
            continue
        item = ctx.next_message(timeout=remaining)
        if item is TIMEOUT:
            _abort_migration(ep, waiting, xfer,
                             span_t0={"reject": t_reject0,
                                      "drain": t_coord0},
                             controller=controller)
            return
        ep.dispatch(item)
    ep._drain_waiting = None
    ep._drain_coordinate = None
    # Line 7: every coordinated channel has been closed by the drain.
    if ep.connected:
        raise MigrationError(
            f"connections survived the drain: {sorted(ep.connected)}")
    t_coord = kernel.now - t_coord0
    vm.trace_record(ctx.name, "coordinate_done", seconds=t_coord,
                    captured=ep.stats.captured_in_transit)
    vm.trace_record(ctx.name, "span_end", phase="drain", rank=ep.rank,
                    seconds=t_coord, **_tctx(ep, "drain"))

    # Line 8: forward the received-message-list to the new process over a
    # direct transfer channel.
    t_xfer0 = kernel.now
    vm.trace_record(ctx.name, "span_start", phase="transfer", rank=ep.rank,
                    **_tctx(ep, "transfer"))
    if xfer is None:
        xfer = vm.create_channel(ctx.vmid, new_vmid)
    messages = ep.recvlist.take_all()
    list_nbytes = sum(m.nbytes for m in messages) + MESSAGE_HEADER_BYTES
    xfer.send(ctx, RecvListTransfer(messages, list_nbytes), list_nbytes)
    vm.trace_record(ctx.name, "recvlist_sent", count=len(messages),
                    nbytes=list_nbytes)

    if source is None:
        # Lines 9-10 sequential (fastpath=False): collect execution and
        # memory state into the machine-independent representation
        # (refs [10, 11]), then ship it as one blob.
        t_collect0 = kernel.now
        blob = encode(state, ep.arch, fastpath=False)
        costs = vm.costs
        ctx.burn(costs.state_fixed + len(blob) * costs.state_collect_per_byte)
        vm.trace_record(ctx.name, "collect_done", nbytes=len(blob),
                        seconds=kernel.now - t_collect0)
        xfer.send(ctx, ExeMemState(blob, len(blob), ep.arch.name), len(blob))
        vm.trace_record(ctx.name, "state_sent", nbytes=len(blob))
    else:
        # Lines 9-10 pipelined: ship whatever the drain did not already
        # cover. collect_done marks the end of collection as before —
        # with the pipeline most of the transfer is already in flight or
        # delivered by now, which is where the latency win comes from.
        while not source.exhausted:
            send_next_chunk()
        extra = {}
        if controller is not None:
            extra = controller.stats()
            controller.close()
        vm.trace_record(ctx.name, "collect_done",
                        nbytes=source.total_nbytes,
                        seconds=collect_seconds, nchunks=source.nchunks,
                        **extra)
        vm.trace_record(ctx.name, "state_sent", nbytes=source.total_nbytes,
                        nchunks=source.nchunks, **extra)

    vm.trace_record(ctx.name, "span_end", phase="transfer", rank=ep.rank,
                    seconds=kernel.now - t_xfer0, **_tctx(ep, "transfer"))

    # Line 11: the migrating process terminates; the initialized process
    # resumes execution.
    vm.trace_record(ctx.name, "span_end", phase="reject", rank=ep.rank,
                    seconds=kernel.now - t_reject0, **_tctx(ep, "reject"))
    vm.trace_record(ctx.name, "migration_source_done",
                    total_seconds=kernel.now - t_start)
    ctx.terminate()


def _abort_migration(ep: MigrationEndpoint, waiting: "set[Rank]",
                     xfer: Channel | None = None,
                     span_t0: "dict[str, float] | None" = None,
                     controller: ChunkController | None = None) -> None:
    """Drain timeout expired: revert to normal execution (hardened mode).

    Undoes Fig. 5 lines 4-5: the endpoint returns to NORMAL, the local
    daemon accepts conn_reqs again, and the scheduler is told so it can
    release the waiting initialized process and optionally retry. Channels
    already coordinated are *not* resurrected — peer_migrating was their
    last message, both sides have closed them, and future sends simply
    reconnect; no data was lost because everything in transit was drained
    into the received-message-list, which this process keeps. State chunks
    the fast path already shipped are abandoned with the transfer channel
    (dropped as protocol control at the exiting initialized process); a
    retried migration re-encodes and re-sends from scratch on a fresh
    channel to the fresh initialized process.

    ``span_t0`` maps still-open phase spans (``reject``, ``drain``) to
    their start times: each gets an explicit ``span_end`` carrying
    ``aborted=True``, so every ``span_start`` in a trace is balanced even
    on the abort path and span consumers need no timeout heuristics.
    """
    ctx = ep.ctx
    vm = ep.vm
    kernel = ep.kernel
    if controller is not None:
        # give the bandwidth-budget slot back: a dead transfer must not
        # keep diluting the fair shares of still-live windows
        controller.close()
    if xfer is not None:
        xfer.close_end(ctx.vmid)
    # close open phase spans innermost-first (drain opened after reject)
    for phase in ("drain", "reject"):
        if span_t0 is not None and phase in span_t0:
            vm.trace_record(ctx.name, "span_end", phase=phase,
                            rank=ep.rank,
                            seconds=kernel.now - span_t0[phase],
                            aborted=True, **_tctx(ep, phase))
    # A retried migration gets a fresh record (and id) from the scheduler.
    ep.trace_id = None
    vm.trace_record(ctx.name, KIND_TIMEOUT, what="migration_drain",
                    waiting=sorted(waiting),
                    pending_grants=ep.pending_grant_count())
    ep.stats.timeouts += 1
    for rank in list(waiting):
        ep.connected.pop(rank, None)
    waiting.clear()
    # Grants whose hello never came belong to abandoned requests (the
    # requester was nacked on a retransmit and redirected); since this
    # process stays alive at the same vmid, a straggler hello would still
    # register normally. Nothing to wait for.
    ep._pending_grants.clear()
    ep._drain_waiting = None
    ep._drain_coordinate = None
    ep.state = NORMAL
    vm.daemon(ctx.host).allow_conn_reqs(ctx.vmid.pid)
    abort = MigrationAbort(rank=ep.rank, old_vmid=ctx.vmid)
    if ep.retry_policy is None:
        ctx.route_control(ep.scheduler_vmid, abort)
    else:
        ep.request_reply(
            ep.scheduler_vmid, abort,
            lambda it: isinstance(it, ControlEnvelope)
            and isinstance(it.msg, SchedulerAck)
            and it.msg.kind == "migration_abort" and it.msg.rank == ep.rank,
            what="migration_abort")
    vm.trace_record(ctx.name, "migration_abort", rank=ep.rank)
    ctx.release_signals()


def run_initialization(ep: MigrationEndpoint) -> dict:
    """The initialize() algorithm on the destination (Fig. 7).

    Returns the restored application state; the caller then resumes the
    program from it.
    """
    ctx = ep.ctx
    vm = ep.vm
    kernel = ep.kernel
    vm.trace_record(ctx.name, "init_start", rank=ep.rank,
                    vmid=str(ctx.vmid))
    t_init0 = kernel.now
    vm.trace_record(ctx.name, "span_start", phase="restore", rank=ep.rank,
                    **_tctx(ep, "restore"))

    # Line 1 is implicit: the endpoint was constructed in the INITIALIZING
    # state and grants every conn_req from the start; data arriving on
    # fresh channels accumulates in the local received-message-list (ListB).

    # Lines 2-3: receive the migrating process's list (ListA), then insert
    # it *in front of* the local list so it is consumed first.
    env = _pump_transfer(ep, RecvListTransfer,
                         span_t0={"restore": t_init0})
    transfer: RecvListTransfer = env.payload
    ep.recvlist.prepend_all(transfer.messages)
    vm.trace_record(ctx.name, "recvlist_received",
                    count=len(transfer.messages))

    # Line 4: receive the execution and memory state — either the single
    # ExeMemState blob (sequential path) or the tail of a state_chunk
    # stream whose restore cost was charged chunk-by-chunk as it arrived
    # (pipelined path; chunks may have been absorbed since before the
    # recvlist transfer landed).
    result = _receive_state(ep, span_t0={"restore": t_init0})
    restore_prepaid = 0.0
    if isinstance(result, Envelope):
        payload: ExeMemState = result.payload
        vm.trace_record(ctx.name, "state_received", nbytes=payload.nbytes,
                        src_arch=payload.src_arch)
        t_restore0 = kernel.now
        state = decode(payload.blob, fastpath=ep.fastpath)
        costs = vm.costs
        ctx.burn(costs.state_fixed
                 + payload.nbytes * costs.state_restore_per_byte)
    else:
        asm = result
        vm.trace_record(ctx.name, "state_received", nbytes=asm.total_nbytes,
                        src_arch=asm.src_arch, nchunks=asm.nchunks)
        t_restore0 = kernel.now
        state = decode(asm.assemble())
        restore_prepaid = asm.restore_seconds
        ep._chunk_assembler = None
    if not isinstance(state, dict):
        raise MigrationError(
            f"restored state is {type(state).__name__}, expected dict")

    # Lines 5-6: tell the scheduler restoration completed; receive the
    # current PL table contents and the old vmid.
    reply_env = _scheduler_rpc(
        ep, RestoreComplete(rank=ep.rank, new_vmid=ctx.vmid),
        lambda m: isinstance(m, PLSnapshot) and m.rank == ep.rank)
    snapshot: PLSnapshot = reply_env.msg
    ep.pl.replace_all(snapshot.table)
    vm.trace_record(ctx.name, "restore_done",
                    seconds=restore_prepaid + (kernel.now - t_restore0),
                    old_vmid=str(snapshot.old_vmid))
    # The restore span covers the whole receive+decode window (list and
    # state transfer included), matching the mp runtime's restore phase.
    vm.trace_record(ctx.name, "span_end", phase="restore", rank=ep.rank,
                    seconds=kernel.now - t_init0, **_tctx(ep, "restore"))
    t_commit0 = kernel.now
    vm.trace_record(ctx.name, "span_start", phase="commit", rank=ep.rank,
                    **_tctx(ep, "commit"))

    # The PL snapshot proves the scheduler booked restore_complete, so an
    # abort is no longer possible: grants held back while initializing
    # (hardened mode) can be issued now, before the commit round-trip.
    ep.state = NORMAL
    ep.flush_init_deferred()

    # Line 7: commit (acknowledged and retried in hardened mode — a lost
    # commit would leave the migration record open forever).
    if ep.retry_policy is None:
        ctx.route_control(ep.scheduler_vmid, MigrationCommit(rank=ep.rank))
    else:
        ep.request_reply(
            ep.scheduler_vmid, MigrationCommit(rank=ep.rank, ack=True),
            lambda it: isinstance(it, ControlEnvelope)
            and isinstance(it.msg, SchedulerAck)
            and it.msg.kind == "migration_commit" and it.msg.rank == ep.rank,
            what="migration_commit")
    vm.trace_record(ctx.name, "migration_commit", rank=ep.rank)
    vm.trace_record(ctx.name, "span_end", phase="commit", rank=ep.rank,
                    seconds=kernel.now - t_commit0, **_tctx(ep, "commit"))

    # Line 8: restore process state — the caller resumes the program.
    return state


def _receive_state(ep: MigrationEndpoint,
                   span_t0: "dict[str, float] | None" = None):
    """Wait for the full state: a blob envelope or a complete chunk stream.

    Returns the :class:`~repro.vm.messages.Envelope` carrying an
    :class:`ExeMemState`, or the endpoint's completed
    :class:`~repro.core.streaming.ChunkAssembler`. Chunks that arrived
    while earlier waits were pumping have already been absorbed by
    dispatch, so the stream may be complete before we even start.
    """
    asm = ep._chunk_assembler
    if asm is not None and asm.complete:
        return asm
    env = _pump_transfer(ep, ExeMemState, accept_chunk_tail=True,
                         span_t0=span_t0)
    if isinstance(env.payload, StateChunk):
        ep.dispatch(env)  # absorb the final chunk; the assembler completes
        return ep._chunk_assembler
    return env


def _pump_transfer(ep: MigrationEndpoint, payload_type: type,
                   accept_chunk_tail: bool = False,
                   span_t0: "dict[str, float] | None" = None) -> Envelope:
    """Wait for a state-transfer payload, honouring scheduler aborts.

    If the scheduler reports the migrating rank terminated before starting
    its migration (:class:`InitAbort`), the initialized process exits —
    there is nothing to restore. ``span_t0`` carries the caller's open
    phase spans (the ``restore`` span): when the wait ends in an abort,
    each gets an explicit ``span_end`` with ``aborted=True`` before the
    process terminates, keeping every trace span balanced.

    In hardened mode the wait also survives a *lost* abort notice: when
    nothing arrives for a while, the initialized process polls the
    scheduler with a lookup on its own rank and exits if it is no longer
    the designated initialized process (the migration was aborted or the
    rank terminated, and the InitAbort datagram was dropped).
    """
    interval = None
    if ep.retry_policy is not None:
        interval = max(ep.retry_policy.cap, ep.retry_policy.base)
    token_box: list[int | None] = [None]

    def pred(it: Any) -> bool:
        if isinstance(it, Envelope):
            if isinstance(it.payload, payload_type):
                return True
            if accept_chunk_tail and isinstance(it.payload, StateChunk) \
                    and it.payload.last:
                return True
        if isinstance(it, ControlEnvelope):
            if isinstance(it.msg, InitAbort):
                return True
            if (token_box[0] is not None and isinstance(it.msg, LookupReply)
                    and it.msg.token == token_box[0]):
                return True
        return False

    def abort_spans() -> None:
        if span_t0 is None:
            return
        for phase, t0 in span_t0.items():
            ep.vm.trace_record(ep.ctx.name, "span_end", phase=phase,
                               rank=ep.rank,
                               seconds=ep.kernel.now - t0, aborted=True,
                               **_tctx(ep, phase))

    while True:
        item = ep.pump_until(pred, timeout=interval)
        if item is TIMEOUT:
            token = next(ep._tokens)
            token_box[0] = token
            ep.vm.trace_record(ep.ctx.name, "init_poll", rank=ep.rank,
                               token=token)
            ep.ctx.route_control(
                ep.scheduler_vmid,
                LookupRequest(rank=ep.rank, reply_to=ep.ctx.vmid,
                              token=token))
            continue
        if isinstance(item, ControlEnvelope):
            if isinstance(item.msg, InitAbort):
                abort_spans()
                ep.vm.trace_record(ep.ctx.name, "init_aborted",
                                   reason=item.msg.reason)
                ep.ctx.terminate()
            reply: LookupReply = item.msg
            token_box[0] = None
            if reply.status == "terminated" \
                    or reply.init_vmid != ep.ctx.vmid:
                # We are no longer the designated initialized process.
                abort_spans()
                ep.vm.trace_record(ep.ctx.name, "init_aborted",
                                   reason="superseded"
                                   if reply.status != "terminated"
                                   else "rank-terminated")
                ep.ctx.terminate()
            continue
        return item


def _scheduler_rpc(ep: MigrationEndpoint, request: Any, match) -> Any:
    """Send *request* to the scheduler; pump until the reply matching
    *match* arrives (re-sending per the endpoint's retry policy, if any).
    Returns the reply's control envelope."""
    return ep.request_reply(
        ep.scheduler_vmid, request,
        lambda it: isinstance(it, ControlEnvelope) and match(it.msg),
        what=type(request).__name__)

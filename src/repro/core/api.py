"""User-facing programming interface for migration-enabled programs.

A *migration-enabled program* is a callable ``program(api, state)``:

* ``api`` is a :class:`SnowAPI` — the replacement for ``pvm_send`` /
  ``pvm_recv`` plus the poll-point migration macro;
* ``state`` is the program's declared memory state, a dict of plain
  containers / scalars / numpy arrays. At a fresh start it is ``{}``; after
  a migration it is the restored state, and the program must resume from
  it (the analogue of SNOW's compiler-annotated resume points — in Python
  the program keeps its loop indices and arrays in ``state``).

Programs call :meth:`SnowAPI.poll_migration` at their poll points; if a
migration request has been intercepted the call never returns on this host
and the program is re-entered on the destination with the restored state.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.core.endpoint import MigrationEndpoint
from repro.core.messages import ANY, DataMessage

__all__ = ["SnowAPI", "Program"]

#: Type of a migration-enabled program.
Program = Callable[["SnowAPI", dict], None]


class SnowAPI:
    """What a migration-enabled application process sees.

    Thin facade over :class:`MigrationEndpoint` — mirrors the prototype's
    ``snow_send`` / ``snow_recv`` library interface (paper Section 5.2).
    """

    def __init__(self, endpoint: MigrationEndpoint, nranks: int,
                 checkpoint_store=None):
        self._ep = endpoint
        self.nranks = nranks
        self._checkpoint_store = checkpoint_store

    # -- identity -----------------------------------------------------------
    @property
    def rank(self) -> int:
        """This process's application-level rank."""
        return self._ep.rank

    @property
    def size(self) -> int:
        """Number of application processes in the computation."""
        return self.nranks

    @property
    def now(self) -> float:
        """Current virtual time (seconds)."""
        return self._ep.kernel.now

    @property
    def host(self) -> str:
        """Name of the workstation this process currently runs on."""
        return self._ep.ctx.host

    # -- communication ---------------------------------------------------------
    def send(self, dest: int, body: Any, tag: int = 0,
             nbytes: int | None = None) -> None:
        """Blocking buffered-mode send to *dest* (``snow_send``)."""
        self._ep.snow_send(dest, body, tag=tag, nbytes=nbytes)

    def recv(self, src: int | None = ANY, tag: int | None = ANY
             ) -> DataMessage:
        """Blocking receive (``snow_recv``); wildcards via ``None``."""
        return self._ep.snow_recv(src=src, tag=tag)

    def recv_body(self, src: int | None = ANY, tag: int | None = ANY) -> Any:
        """Receive and return just the message body."""
        return self._ep.snow_recv(src=src, tag=tag).body

    # -- computation & migration ------------------------------------------------
    def compute(self, reference_seconds: float) -> None:
        """A computation event of the given reference-machine cost."""
        self._ep.ctx.compute(reference_seconds)

    def poll_migration(self, state: dict) -> None:
        """Poll-point macro: migrate here if a request was intercepted."""
        self._ep.poll_migration(state)

    def checkpoint(self, state: dict, version: int) -> int:
        """Save *state* as this rank's checkpoint *version*.

        Call at iteration boundaries (the same quiescent points as
        ``poll_migration``). Charges the machine-independent collection
        cost; returns the blob size. Requires the application to have
        been launched with a ``checkpoint_store``.
        """
        if self._checkpoint_store is None:
            raise RuntimeError(
                "application launched without a checkpoint_store")
        from repro.core.checkpointing import checkpoint_state
        costs = self._ep.vm.costs
        nbytes = checkpoint_state(self._checkpoint_store, self.rank,
                                  version, state, self._ep.arch)
        self._ep.ctx.burn(costs.state_fixed
                          + nbytes * costs.state_collect_per_byte)
        self._ep.vm.trace_record(self._ep.ctx.name, "checkpoint_saved",
                                 version=version, nbytes=nbytes)
        return nbytes

    def log(self, kind: str, **detail: Any) -> None:
        """Record an application-level trace event."""
        self._ep.vm.trace_record(self._ep.ctx.name, f"app_{kind}", **detail)

    # -- introspection (tests, benchmarks) -----------------------------------
    @property
    def endpoint(self) -> MigrationEndpoint:
        return self._ep

"""Automatic load balancing via process migration.

The paper's first listed motivation for process migration is load
balancing and "achieving high performance via utilizing unused network
resources". This module realizes it on top of the reproduction's
scheduler: a :class:`LoadBalancer` watches each rank's progress rate
(application-level progress events in the trace), detects ranks that lag
the pack — a process stuck on a slow or overloaded machine — and issues
migration requests to idle hosts automatically.

Two straggler signals are provided (the paper's contribution is the
migration *mechanism*; any policy can sit on top):

* ``signal="wait_share"`` (default) — the fraction of the window each
  rank spent blocked in communication. In a tightly coupled SPMD code
  every rank *progresses* at the slowest rank's pace, so progress rates
  cannot identify the bottleneck — but the bottleneck rank is the one
  that never waits while everyone else waits for it, so the straggler is
  the rank with the *lowest* wait share.
* ``signal="progress"`` — per-rank progress-event rate (suitable for
  loosely coupled workloads, e.g. task farms).

Common policy rules: the straggler must fall below ``threshold`` × the
median; the destination is the fastest *idle* host (one hosting no
application rank); moves are rate-limited by a cool-down and a total cap.

With ``batch > 1`` one evaluation may relocate several stragglers at
once: every rank below the cutoff is paired with its own idle host
(fastest hosts to the slowest ranks) and the whole batch of
``MigrateRequest``\\ s lands at the scheduler together, where gang
admission (:mod:`repro.core.gang`) opens the windows concurrently — the
MOSIX-style batched-relocation case the gang engine exists for.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.launch import Application
from repro.core.messages import MigrateRequest
from repro.vm.ids import Rank, VmId
from repro.vm.messages import ControlEnvelope

__all__ = ["LoadBalancer", "BalancerDecision"]


@dataclass(frozen=True)
class BalancerDecision:
    """One automatic migration decision, for inspection/tests."""

    time: float
    rank: Rank
    dest_host: str
    rate: float
    median_rate: float


@dataclass
class LoadBalancer:
    """Progress-rate-based automatic migration policy.

    Parameters
    ----------
    app:
        The running application (must be ``start()``-ed before attaching).
    progress_kind:
        Trace event kind counted as one unit of progress (the MG program
        emits ``app_vcycle_done``; step-function programs can emit their
        own via ``api.log``).
    interval:
        Virtual seconds between policy evaluations.
    threshold:
        Straggler cutoff as a fraction of the median rate.
    cooldown:
        Minimum virtual time between automatic migrations.
    batch:
        Maximum stragglers relocated per evaluation (each to its own
        idle host, as one concurrent gang).
    """

    app: Application
    signal: str = "wait_share"
    progress_kind: str = "app_vcycle_done"
    interval: float = 0.25
    threshold: float = 0.5
    cooldown: float = 1.0
    max_migrations: int = 4
    batch: int = 1
    decisions: list[BalancerDecision] = field(default_factory=list)
    _last_move: float = field(default=-1e9)
    _scan_pos: int = 0
    _window_start: float = 0.0
    _window_counts: dict[Rank, int] = field(default_factory=dict)
    _last_comm: dict[Rank, float] = field(default_factory=dict)

    def attach(self) -> "LoadBalancer":
        """Start periodic policy evaluation on the application's kernel."""
        kernel = self.app.vm.kernel
        kernel.call_later(self.interval, self._tick)
        return self

    # -- policy ----------------------------------------------------------
    def _tick(self) -> None:
        kernel = self.app.vm.kernel
        self._ingest_new_events()
        try:
            self._evaluate()
        finally:
            # keep evaluating as long as the application lives
            if any(t.alive for t in kernel._threads if not t.daemon):
                kernel.call_later(self.interval, self._tick)

    def _ingest_new_events(self) -> None:
        events = self.app.vm.trace.events
        for i in range(self._scan_pos, len(events)):
            ev = events[i]
            if ev.kind == self.progress_kind:
                rank = self._actor_rank(ev.actor)
                if rank is not None:
                    self._window_counts[rank] = \
                        self._window_counts.get(rank, 0) + 1
        self._scan_pos = len(events)

    @staticmethod
    def _actor_rank(actor: str) -> Rank | None:
        # process names are p<rank> or p<rank>.m<k>
        if not actor.startswith("p"):
            return None
        head = actor[1:].split(".", 1)[0]
        return int(head) if head.isdigit() else None

    def _evaluate(self) -> None:
        now = self.app.vm.kernel.now
        window = now - self._window_start
        if window < self.interval * 0.5:
            return
        if self.signal == "progress":
            rates = {r: c / window for r, c in self._window_counts.items()}
            straggler_is_min = True
        elif self.signal == "wait_share":
            rates = self._wait_shares(window)
            straggler_is_min = True
        else:
            raise ValueError(f"unknown balancer signal {self.signal!r}")
        self._window_counts = {}
        self._window_start = now
        if len(rates) < 2:
            return
        ordered = sorted(rates.values())
        median = ordered[len(ordered) // 2]
        if median <= 0:
            return
        if now - self._last_move < self.cooldown:
            return
        if len(self.decisions) >= self.max_migrations:
            return
        cutoff = self.threshold * median
        stragglers = sorted((r for r in rates if rates[r] < cutoff),
                            key=rates.get)  # type: ignore[arg-type]
        if not stragglers:
            return
        room = self.max_migrations - len(self.decisions)
        idle = self._idle_hosts()
        # slowest stragglers get the fastest idle machines; the batch is
        # bounded by the policy knob, the remaining move budget and the
        # number of distinct destinations available
        moves = list(zip(stragglers, idle))[:max(1, self.batch)][:room]
        if not moves:
            return
        self._last_move = now
        for straggler, dest in moves:
            self.decisions.append(BalancerDecision(
                time=now, rank=straggler, dest_host=dest,
                rate=rates[straggler], median_rate=median))
            self.app.vm.trace_record("balancer", "auto_migrate",
                                     rank=straggler, dest=dest,
                                     rate=round(rates[straggler], 3),
                                     median=round(median, 3),
                                     batch=len(moves))
            self.app._scheduler_ctx.mailbox.put(ControlEnvelope(
                src_vmid=VmId("balancer", 0),
                msg=MigrateRequest(rank=straggler, dest_host=dest)))

    def _wait_shares(self, window: float) -> dict[Rank, float]:
        """Fraction of the window each rank spent inside blocking
        communication (snow_send/snow_recv). The straggler waits least."""
        shares: dict[Rank, float] = {}
        for rank, ep in self.app.endpoints.items():
            if not ep.ctx.alive:
                continue
            cur = ep.stats.comm_time
            prev = self._last_comm.get(rank)
            self._last_comm[rank] = cur
            if prev is None or cur < prev:
                # first sample, or the endpoint was replaced by a new
                # incarnation after a migration: start a fresh baseline
                continue
            shares[rank] = (cur - prev) / window
        return shares

    def _idle_hosts(self) -> list[str]:
        """Hosts with no application rank (and not the scheduler's),
        fastest machines first."""
        occupied = set()
        for ep in self.app.endpoints.values():
            if ep.ctx.alive:
                occupied.add(ep.ctx.host)
        occupied.add(self.app.scheduler_host)
        candidates = [h for h in self.app.vm.hosts if h not in occupied]
        net = self.app.vm.network
        return sorted(candidates, key=lambda h: net.host(h).cpu_speed,
                      reverse=True)

    def _pick_idle_host(self) -> str | None:
        """The single fastest idle host (legacy single-move helper)."""
        idle = self._idle_hosts()
        return idle[0] if idle else None

"""Bandwidth-aware chunk sizing for the pipelined state transfer.

The fast path (PR 3) ships migration state as ``state_chunk`` frames of a
fixed 256 KiB. That one constant cannot suit both ends of the paper's
hardware table: on a fast link large chunks amortize per-frame overhead,
while on a slow or jittery link a large chunk parks the pipeline — the
whole collect/ship/restore overlap the fast path exists for degenerates
back to the sequential path whenever the chunk is a significant fraction
of the state (a 256 KiB state in one 256 KiB chunk is *not pipelined at
all*).

:class:`ChunkController` closes the loop AIMD-style, the congestion
discipline TCP uses: every shipped chunk reports its **ship latency** —
virtual send-to-arrival time in the simulator (which includes link-queue
wait, the true congestion signal), wall-clock socket hand-off time in the
multiprocess runtime (which includes kernel-buffer backpressure). While
latency stays inside the per-chunk budget the next chunk grows (doubling
until the first backoff — slow start — then additively); the first over-
budget chunk multiplies the size down. Floor and ceiling bound the size
in both directions, and everything is a deterministic function of the
observation sequence, so virtual-time runs reproduce exactly.

The controller is transport-agnostic: :class:`~repro.core.streaming.
ChunkSource` accepts it (or any object with ``next_size()``) in place of
the fixed ``chunk_bytes`` integer; both the simulator's migration
(:mod:`repro.core.migration`) and the mp runtime's ``_migrate`` feed
observations back.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.streaming import DEFAULT_CHUNK_BYTES
from repro.util.errors import MigrationError

__all__ = ["AdaptiveChunkPolicy", "ChunkController", "coerce_chunk_bytes"]


@dataclass(frozen=True)
class AdaptiveChunkPolicy:
    """Tuning knobs for one :class:`ChunkController`.

    ``latency_budget`` is the per-chunk ship-latency target: the largest
    chunk the link can carry inside the budget is the size that keeps
    the pipeline granular enough to overlap collect/ship/restore without
    paying per-frame fixed costs on every few KiB. The defaults suit
    both runtimes: an 8 KiB floor keeps even a 10 Mbit/s simulated link
    pipelined, slow start reaches socket-efficient sizes on a real
    loopback within a handful of chunks.
    """

    floor: int = 8 * 1024
    ceiling: int = 4 * 1024 * 1024
    #: first chunk size; ``None`` starts at the floor (pessimistic start:
    #: a slow link never sees an oversized probe chunk)
    initial: int | None = None
    #: additive increase per in-budget chunk after slow start;
    #: ``None`` uses the floor
    step: int | None = None
    #: multiplicative decrease on an over-budget chunk
    backoff: float = 0.5
    #: per-chunk ship-latency target, seconds
    latency_budget: float = 6e-3

    def __post_init__(self) -> None:
        if self.floor <= 0:
            raise MigrationError(f"chunk floor must be positive: {self.floor}")
        if self.ceiling < self.floor:
            raise MigrationError(
                f"chunk ceiling {self.ceiling} below floor {self.floor}")
        if self.initial is not None and \
                not self.floor <= self.initial <= self.ceiling:
            raise MigrationError(
                f"initial chunk size {self.initial} outside "
                f"[{self.floor}, {self.ceiling}]")
        if not 0.0 < self.backoff < 1.0:
            raise MigrationError(
                f"backoff must be in (0, 1): {self.backoff}")
        if self.latency_budget <= 0:
            raise MigrationError(
                f"latency budget must be positive: {self.latency_budget}")


class ChunkController:
    """AIMD chunk sizing driven by per-chunk ship-latency observations.

    One controller serves one transfer (a fresh one is built per
    migration attempt, so a retry after an abort starts from the policy's
    initial size again). ``next_size()`` may be called any number of
    times between observations — the size only moves on ``observe()``.
    """

    def __init__(self, policy: AdaptiveChunkPolicy | None = None):
        self.policy = policy or AdaptiveChunkPolicy()
        p = self.policy
        self._size = p.initial if p.initial is not None else p.floor
        self._step = p.step if p.step is not None else p.floor
        #: doubling until the first backoff (slow start), additive after
        self._slow_start = True
        # -- stats (tests, obs span attributes, bench reports) -----------
        self.nobserved = 0
        self.growths = 0
        self.backoffs = 0
        self.min_size = self._size
        self.max_size = self._size
        self.last_latency: float | None = None

    def next_size(self) -> int:
        return self._size

    @property
    def size(self) -> int:
        return self._size

    def observe(self, nbytes: int, latency: float) -> None:
        """Feed back one shipped chunk: its size and its ship latency.

        Latency at or under the budget grows the next chunk (doubling in
        slow start, ``+step`` after); over budget cuts it multiplicatively
        and ends slow start. The result is always clamped to
        ``[floor, ceiling]``.
        """
        p = self.policy
        self.nobserved += 1
        self.last_latency = latency
        if latency <= p.latency_budget:
            grown = (self._size * 2 if self._slow_start
                     else self._size + self._step)
            new = min(p.ceiling, grown)
            if new > self._size:
                self.growths += 1
            self._size = new
        else:
            self._slow_start = False
            new = max(p.floor, int(self._size * p.backoff))
            if new < self._size:
                self.backoffs += 1
            self._size = new
        self.min_size = min(self.min_size, self._size)
        self.max_size = max(self.max_size, self._size)

    def stats(self) -> dict:
        """Controller summary for span attributes and bench artifacts."""
        return {
            "chunk_bytes_last": self._size,
            "chunk_bytes_min": self.min_size,
            "chunk_bytes_max": self.max_size,
            "chunk_growths": self.growths,
            "chunk_backoffs": self.backoffs,
        }


def coerce_chunk_bytes(value) -> "int | AdaptiveChunkPolicy":
    """Normalize a user-facing ``chunk_bytes`` setting.

    ``None`` → the fixed default, an ``int`` → that fixed size,
    ``"adaptive"`` → a default :class:`AdaptiveChunkPolicy`, a policy →
    itself. The result is what :class:`~repro.core.endpoint.
    MigrationEndpoint` / the mp worker store and what the migration code
    turns into a controller per transfer.
    """
    if value is None:
        return DEFAULT_CHUNK_BYTES
    if isinstance(value, AdaptiveChunkPolicy):
        return value
    if isinstance(value, str):
        if value == "adaptive":
            return AdaptiveChunkPolicy()
        raise MigrationError(
            f"chunk_bytes string must be 'adaptive', got {value!r}")
    if isinstance(value, bool) or not isinstance(value, int):
        raise MigrationError(
            f"chunk_bytes must be int | 'adaptive' | AdaptiveChunkPolicy "
            f"| None, got {type(value).__name__}")
    if value <= 0:
        raise MigrationError(f"chunk_bytes must be positive: {value}")
    return value

"""Bandwidth-aware chunk sizing for the pipelined state transfer.

The fast path (PR 3) ships migration state as ``state_chunk`` frames of a
fixed 256 KiB. That one constant cannot suit both ends of the paper's
hardware table: on a fast link large chunks amortize per-frame overhead,
while on a slow or jittery link a large chunk parks the pipeline — the
whole collect/ship/restore overlap the fast path exists for degenerates
back to the sequential path whenever the chunk is a significant fraction
of the state (a 256 KiB state in one 256 KiB chunk is *not pipelined at
all*).

:class:`ChunkController` closes the loop AIMD-style, the congestion
discipline TCP uses: every shipped chunk reports its **ship latency** —
virtual send-to-arrival time in the simulator (which includes link-queue
wait, the true congestion signal), wall-clock socket hand-off time in the
multiprocess runtime (which includes kernel-buffer backpressure). While
latency stays inside the per-chunk budget the next chunk grows (doubling
until the first backoff — slow start — then additively); the first over-
budget chunk multiplies the size down. Floor and ceiling bound the size
in both directions, and everything is a deterministic function of the
observation sequence, so virtual-time runs reproduce exactly.

The controller is transport-agnostic: :class:`~repro.core.streaming.
ChunkSource` accepts it (or any object with ``next_size()``) in place of
the fixed ``chunk_bytes`` integer; both the simulator's migration
(:mod:`repro.core.migration`) and the mp runtime's ``_migrate`` feed
observations back.

Two refinements close the gap between one transfer and a *gang* of
concurrent ones (PR 10):

* ``latency_budget="auto"`` — instead of a fixed per-chunk target, the
  budget floats at ``auto_headroom ×`` the minimum ship latency ever
  observed on the link (its RTT floor). The first observation seeds the
  floor and is therefore always in budget; after that the controller
  tolerates chunks up to ``auto_headroom``× the link's best case, which
  finds the bandwidth/latency knee without hand-tuning per link speed.
* :class:`BandwidthBudget` — a per-source-host ledger shared by every
  concurrent transfer leaving that host. Without it, k controllers on
  one link each read the others' queue wait as congestion and *all*
  collapse to the floor; with it, each controller scales its latency
  budget (and caps its ceiling) by the number of active transfers, so
  the gang splits the link fairly instead of collapsing the AIMD signal.
  The ledger also pools RTT-floor observations, so a transfer that
  starts mid-gang inherits the link's floor instead of mistaking a
  congested first chunk for the link's best case.
"""

from __future__ import annotations

import math

from dataclasses import dataclass

from repro.core.streaming import DEFAULT_CHUNK_BYTES
from repro.util.errors import MigrationError

__all__ = ["AdaptiveChunkPolicy", "BandwidthBudget", "ChunkController",
           "coerce_chunk_bytes"]

#: ``latency_budget="auto"`` tolerates chunks this many times the link's
#: observed RTT floor before backing off.
AUTO_LATENCY_HEADROOM = 8.0


@dataclass(frozen=True)
class AdaptiveChunkPolicy:
    """Tuning knobs for one :class:`ChunkController`.

    ``latency_budget`` is the per-chunk ship-latency target: the largest
    chunk the link can carry inside the budget is the size that keeps
    the pipeline granular enough to overlap collect/ship/restore without
    paying per-frame fixed costs on every few KiB. The defaults suit
    both runtimes: an 8 KiB floor keeps even a 10 Mbit/s simulated link
    pipelined, slow start reaches socket-efficient sizes on a real
    loopback within a handful of chunks.
    """

    floor: int = 8 * 1024
    ceiling: int = 4 * 1024 * 1024
    #: first chunk size; ``None`` starts at the floor (pessimistic start:
    #: a slow link never sees an oversized probe chunk)
    initial: int | None = None
    #: additive increase per in-budget chunk after slow start;
    #: ``None`` uses the floor
    step: int | None = None
    #: multiplicative decrease on an over-budget chunk
    backoff: float = 0.5
    #: per-chunk ship-latency target, seconds — or ``"auto"`` to derive
    #: it from the link's observed RTT floor (``auto_headroom ×`` the
    #: minimum ship latency seen so far)
    latency_budget: float | str = 6e-3
    #: multiplier on the RTT floor when ``latency_budget="auto"``
    auto_headroom: float = AUTO_LATENCY_HEADROOM

    def __post_init__(self) -> None:
        if self.floor <= 0:
            raise MigrationError(f"chunk floor must be positive: {self.floor}")
        if self.ceiling < self.floor:
            raise MigrationError(
                f"chunk ceiling {self.ceiling} below floor {self.floor}")
        if self.initial is not None and \
                not self.floor <= self.initial <= self.ceiling:
            raise MigrationError(
                f"initial chunk size {self.initial} outside "
                f"[{self.floor}, {self.ceiling}]")
        if not 0.0 < self.backoff < 1.0:
            raise MigrationError(
                f"backoff must be in (0, 1): {self.backoff}")
        if isinstance(self.latency_budget, str):
            if self.latency_budget != "auto":
                raise MigrationError(
                    f"latency budget string must be 'auto', "
                    f"got {self.latency_budget!r}")
        elif self.latency_budget <= 0:
            raise MigrationError(
                f"latency budget must be positive: {self.latency_budget}")
        if self.auto_headroom <= 1.0:
            raise MigrationError(
                f"auto headroom must exceed 1: {self.auto_headroom}")


class BandwidthBudget:
    """Fair-share ledger for the concurrent transfers leaving one host.

    Every in-flight transfer ``acquire()``s a slot while it ships chunks
    and ``release()``s it on commit *or* abort. Attached controllers read
    ``share`` — the number of active transfers — to scale their latency
    budget (a chunk queued behind ``k-1`` siblings legitimately takes
    ``k×`` as long; that is contention, not congestion) and to cap their
    chunk ceiling at an equal split of the link. The ledger also pools
    RTT-floor observations across transfers: the link's best-case ship
    latency, the seed for ``latency_budget="auto"``.

    The ledger is plain in-process state — correct for the simulator
    (single-threaded virtual time) and for any one mp worker. The mp
    runtime substitutes a ``multiprocessing``-backed ledger with the same
    interface so forked workers on one host share the counts.
    """

    def __init__(self, host: str = ""):
        self.host = host
        self._active = 0
        self._rtt_floor: float | None = None
        # -- stats (tests, bench reports) --------------------------------
        self.peak_active = 0
        self.acquires = 0

    def acquire(self) -> None:
        self._active += 1
        self.acquires += 1
        self.peak_active = max(self.peak_active, self._active)

    def release(self) -> None:
        self._active = max(0, self._active - 1)

    @property
    def active(self) -> int:
        return self._active

    @property
    def share(self) -> int:
        """Divisor for fair-share scaling — never below one."""
        return max(1, self._active)

    def observe_latency(self, latency: float) -> None:
        """Fold one ship latency into the pooled RTT floor."""
        if latency > 0.0 and (self._rtt_floor is None
                              or latency < self._rtt_floor):
            self._rtt_floor = latency

    @property
    def rtt_floor(self) -> float | None:
        return self._rtt_floor


class ChunkController:
    """AIMD chunk sizing driven by per-chunk ship-latency observations.

    One controller serves one transfer (a fresh one is built per
    migration attempt, so a retry after an abort starts from the policy's
    initial size again). ``next_size()`` may be called any number of
    times between observations — the size only moves on ``observe()``.

    With a :class:`BandwidthBudget` attached the controller holds one of
    the budget's slots from construction until :meth:`close`, scales its
    latency budget by the budget's ``share``, and caps its size at an
    equal split of the ceiling — the fair-share discipline that keeps a
    gang of concurrent transfers from reading each other's queue wait as
    congestion.
    """

    def __init__(self, policy: AdaptiveChunkPolicy | None = None,
                 budget=None):
        self.policy = policy or AdaptiveChunkPolicy()
        p = self.policy
        self._size = p.initial if p.initial is not None else p.floor
        self._step = p.step if p.step is not None else p.floor
        #: doubling until the first backoff (slow start), additive after
        self._slow_start = True
        self._budget = budget
        self._holds_slot = False
        #: controller-local RTT floor (used by ``"auto"`` when no shared
        #: budget is attached)
        self._min_latency: float | None = None
        if budget is not None:
            budget.acquire()
            self._holds_slot = True
        # -- stats (tests, obs span attributes, bench reports) -----------
        self.nobserved = 0
        self.growths = 0
        self.backoffs = 0
        self.min_size = self._size
        self.max_size = self._size
        self.last_latency: float | None = None

    def close(self) -> None:
        """Release the bandwidth-budget slot (idempotent).

        Called when the transfer finishes — commit, abort, or crash of
        the *other* end — so a dead transfer stops diluting the shares of
        live ones.
        """
        if self._holds_slot:
            self._budget.release()
            self._holds_slot = False

    def next_size(self) -> int:
        if self._budget is not None:
            p = self.policy
            cap = max(p.floor, p.ceiling // self._budget.share)
            return min(self._size, cap)
        return self._size

    @property
    def size(self) -> int:
        return self._size

    def latency_budget(self) -> float:
        """The effective per-chunk budget for the *next* observation.

        Fixed policies return their constant scaled by the fair share;
        ``"auto"`` returns ``auto_headroom ×`` the RTT floor (pooled
        across the gang when a budget is attached), or ``+inf`` before
        the first observation seeds the floor.
        """
        p = self.policy
        share = self._budget.share if self._budget is not None else 1
        if p.latency_budget == "auto":
            floor = (self._budget.rtt_floor if self._budget is not None
                     else None)
            if floor is None:
                floor = self._min_latency
            if floor is None:
                return math.inf
            return floor * p.auto_headroom * share
        return p.latency_budget * share

    def observe(self, nbytes: int, latency: float) -> None:
        """Feed back one shipped chunk: its size and its ship latency.

        Latency at or under the budget grows the next chunk (doubling in
        slow start, ``+step`` after); over budget cuts it multiplicatively
        and ends slow start. The result is always clamped to
        ``[floor, ceiling]``. The RTT floor is folded in *before* the
        budget check, so the very first observation seeds ``"auto"`` and
        is always in budget.
        """
        p = self.policy
        self.nobserved += 1
        self.last_latency = latency
        if latency > 0.0 and (self._min_latency is None
                              or latency < self._min_latency):
            self._min_latency = latency
        if self._budget is not None:
            self._budget.observe_latency(latency)
        if latency <= self.latency_budget():
            grown = (self._size * 2 if self._slow_start
                     else self._size + self._step)
            new = min(p.ceiling, grown)
            if new > self._size:
                self.growths += 1
            self._size = new
        else:
            self._slow_start = False
            new = max(p.floor, int(self._size * p.backoff))
            if new < self._size:
                self.backoffs += 1
            self._size = new
        self.min_size = min(self.min_size, self._size)
        self.max_size = max(self.max_size, self._size)

    def stats(self) -> dict:
        """Controller summary for span attributes and bench artifacts."""
        budget = self.latency_budget()
        return {
            "chunk_bytes_last": self._size,
            "chunk_bytes_min": self.min_size,
            "chunk_bytes_max": self.max_size,
            "chunk_growths": self.growths,
            "chunk_backoffs": self.backoffs,
            "latency_budget_s": None if math.isinf(budget) else budget,
            "rtt_floor_s": (self._budget.rtt_floor
                            if self._budget is not None
                            else self._min_latency),
        }


def coerce_chunk_bytes(value) -> "int | AdaptiveChunkPolicy":
    """Normalize a user-facing ``chunk_bytes`` setting.

    ``None`` → the fixed default, an ``int`` → that fixed size,
    ``"adaptive"`` → a default :class:`AdaptiveChunkPolicy`, a policy →
    itself. The result is what :class:`~repro.core.endpoint.
    MigrationEndpoint` / the mp worker store and what the migration code
    turns into a controller per transfer.
    """
    if value is None:
        return DEFAULT_CHUNK_BYTES
    if isinstance(value, AdaptiveChunkPolicy):
        return value
    if isinstance(value, str):
        if value == "adaptive":
            return AdaptiveChunkPolicy()
        raise MigrationError(
            f"chunk_bytes string must be 'adaptive', got {value!r}")
    if isinstance(value, bool) or not isinstance(value, int):
        raise MigrationError(
            f"chunk_bytes must be int | 'adaptive' | AdaptiveChunkPolicy "
            f"| None, got {type(value).__name__}")
    if value <= 0:
        raise MigrationError(f"chunk_bytes must be positive: {value}")
    return value

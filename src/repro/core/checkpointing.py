"""Application-level checkpoint/restart (the fault-tolerance motivation).

The paper lists fault tolerance among the motivations for state-transfer
machinery, and §7 discusses checkpoint-based systems at length. This
module provides the classic *application-level* variant for SPMD codes on
top of the reproduction's machine-independent codec:

* each rank calls :meth:`SnowAPI-style checkpoint <CheckpointStore>`
  at an **iteration boundary** — the same places the migration poll
  points live. For loop-synchronous programs these boundaries are
  message-quiescent by construction (every message sent in an iteration
  is received in it), so the set of per-rank checkpoints with a common
  version number is globally consistent *without* any runtime
  coordination;
* after a crash (or intentionally — "users can crash a process
  intentionally and restart ... on a new machine", §1), the computation
  restarts from the latest version every rank completed, on any hosts,
  any architectures: blobs are self-describing.

What this deliberately does **not** do is checkpoint mid-iteration with
messages in flight — capturing channel state at arbitrary points is the
coordinated-checkpointing territory of CoCheck (see
:mod:`repro.baselines.cocheck` for that mechanism and its costs).
"""

from __future__ import annotations

import hashlib
import struct
import zlib
from pathlib import Path

from repro.codec import NATIVE, Architecture, decode, encode, encode_parts
from repro.util.errors import ReproError
from repro.util.fsio import atomic_write_bytes
from repro.vm.ids import Rank

__all__ = ["CheckpointStore", "checkpoint_state", "restore_state"]

#: Disk-blob integrity header: magic, CRC-32 and length of the payload.
#: A blob written before the header existed starts with the codec's own
#: bytes, never this magic, so legacy files still load.
_MAGIC = b"RPCK1\x00"
_HEADER = struct.Struct(">6sIQ")

#: Delta-checkpoint files reuse the exact header discipline with their
#: own magic; the CRC covers the whole delta payload, so a torn tail is
#: detected before any part of the manifest is trusted.
_DELTA_MAGIC = b"RPCD1\x00"
#: delta payload head: base_version + 1 (0 = self-contained), full state
#: size in bytes, number of parts in this version's encoding
_D_HEAD = struct.Struct(">QQI")
#: one manifest record per part: part length, changed flag, part digest
_D_PART = struct.Struct(">QB16s")
_D_DIGEST_BYTES = 16


def _part_digest(buf) -> bytes:
    return hashlib.blake2b(buf, digest_size=_D_DIGEST_BYTES).digest()


class CheckpointStore:
    """Versioned per-rank checkpoint blobs, in memory or on disk.

    Disk layout (when *directory* is given): one file per checkpoint,
    ``ckpt-r<rank>-v<version>.bin``. Writes are crash-safe — payloads
    carry a CRC-framed header and land via fsync-and-rename — so a file
    that exists is either complete or detectably torn, never silently
    half-written into the codec.

    With ``delta=True``, :meth:`save_parts` (and
    :func:`checkpoint_state`) writes *incremental* checkpoints: the
    encoded state's zero-copy part list is hashed part-by-part against
    the previous version, and only changed parts hit the disk, alongside
    a manifest naming every part's length and digest plus the base
    version. :meth:`load_blob` resolves the delta chain transparently and
    digest-asserts the materialized state, so readers (restore, recovery,
    migration reuse) never see the difference. Every
    ``delta_max_chain``-th save is self-contained — the compaction point
    bounding chain length and file retention.
    """

    def __init__(self, directory: str | Path | None = None, *,
                 delta: bool = False, delta_max_chain: int = 8,
                 delta_gc: bool = True):
        self._dir = Path(directory) if directory is not None else None
        if self._dir is not None:
            self._dir.mkdir(parents=True, exist_ok=True)
        self._mem: dict[tuple[Rank, int], bytes] = {}
        #: incremental mode: :meth:`save_parts` diffs against the rank's
        #: previous version and writes only changed parts
        self.delta = delta
        #: garbage-collect superseded chain files at compaction points:
        #: after each durable self-contained write, versions older than
        #: the *previous* compaction point are deleted (one full chain
        #: window is retained so peers lagging a version still find a
        #: common recovery line). The new file is fsynced and renamed
        #: before any unlink — a crash mid-GC only leaves extra files.
        self.delta_gc = delta_gc
        if delta_max_chain < 1:
            raise ReproError(
                f"delta_max_chain must be >= 1: {delta_max_chain}")
        #: deltas allowed on top of a self-contained base before the next
        #: save compacts (writes self-contained again) — bounds both the
        #: restore read chain and how long old files must be retained
        self.delta_max_chain = delta_max_chain
        #: (version, [part digests]) of each rank's last save_parts —
        #: the diff base; process-local, so a fresh process (post-crash)
        #: naturally starts its chain with a self-contained write
        self._part_cache: dict[Rank, tuple[int, list[bytes]]] = {}
        self._chain_len: dict[Rank, int] = {}
        #: version of each rank's previous self-contained save_parts —
        #: the GC cutoff at the next compaction point
        self._last_compaction: dict[Rank, int] = {}
        #: versions deleted by the last automatic GC (test/report hook)
        self.last_gc_deleted: list[int] = []
        #: part-hash invocations (tests assert single-pass hashing when
        #: a migration reuses checkpoint parts)
        self.hash_ops = 0
        #: payload bytes of the last save_parts (bench A/B artifact)
        self.last_write_nbytes = 0
        self.last_parts_changed = 0

    # -- raw blob access -------------------------------------------------
    def save_blob(self, rank: Rank, version: int, blob: bytes) -> None:
        if self._dir is None:
            self._mem[(rank, version)] = blob
        else:
            framed = _HEADER.pack(_MAGIC, zlib.crc32(blob), len(blob)) + blob
            atomic_write_bytes(
                self._dir / f"ckpt-r{rank}-v{version}.bin", framed)

    def save_parts(self, rank: Rank, version: int, parts: list) -> int:
        """Incremental save from an encoded zero-copy part list.

        Hashes each part and, when the rank's previous :meth:`save_parts`
        version is cached, writes a delta file carrying only the changed
        parts plus a full manifest (every part's length, changed flag and
        digest) and the full-state digest. A cold start, a part-count
        explosion or a chain at ``delta_max_chain`` writes self-contained
        (all parts present — the compaction point). Returns the payload
        bytes actually written.
        """
        mvs = [p if isinstance(p, memoryview) else memoryview(p)
               for p in parts]
        mvs = [mv.cast("B") if mv.format != "B" or mv.ndim != 1 else mv
               for mv in mvs]
        digests = []
        for mv in mvs:
            digests.append(_part_digest(mv))
            self.hash_ops += 1
        full_nbytes = sum(mv.nbytes for mv in mvs)
        full_digest = _part_digest(b"".join(mvs))

        cached = self._part_cache.get(rank)
        chain = self._chain_len.get(rank, 0)
        base_plus1 = 0
        base_digests: list[bytes] = []
        if self.delta and cached is not None \
                and chain < self.delta_max_chain:
            base_version, base_digests = cached
            base_plus1 = base_version + 1

        records = []
        changed_payload = []
        nchanged = 0
        for i, (mv, digest) in enumerate(zip(mvs, digests)):
            unchanged = (i < len(base_digests)
                         and digest == base_digests[i] and base_plus1 > 0)
            if not unchanged:
                nchanged += 1
                changed_payload.append(mv)
            records.append(_D_PART.pack(mv.nbytes, 0 if unchanged else 1,
                                        digest))
        payload = b"".join(
            [_D_HEAD.pack(base_plus1, full_nbytes, len(mvs)), full_digest,
             *records, *changed_payload])
        framed = _HEADER.pack(_DELTA_MAGIC, zlib.crc32(payload),
                              len(payload)) + payload
        if self._dir is None:
            self._mem[(rank, version)] = framed
        else:
            atomic_write_bytes(
                self._dir / f"ckpt-r{rank}-v{version}.bin", framed)
        self._part_cache[rank] = (version, digests)
        self._chain_len[rank] = chain + 1 if base_plus1 else 1
        self.last_write_nbytes = len(payload)
        self.last_parts_changed = nchanged
        if base_plus1 == 0:
            # Compaction point: the self-contained write above is durable
            # (fsync-and-rename), so chain files behind the *previous*
            # compaction point can never be needed again — not by this
            # version's read chain, not by the walk-back restore scan
            # (which stops at the retained previous window).
            prev = self._last_compaction.get(rank)
            self._last_compaction[rank] = version
            self.last_gc_deleted = (
                self._delete_versions_below(rank, prev)
                if self.delta_gc and prev is not None and prev <= version
                else [])
        return len(payload)

    def _delete_versions_below(self, rank: Rank,
                               cutoff: int) -> list[int]:
        """Delete every stored version of *rank* older than *cutoff*."""
        deleted = []
        for version in self.versions(rank):
            if version >= cutoff:
                continue
            if self._dir is None:
                del self._mem[(rank, version)]
            else:
                path = self._dir / f"ckpt-r{rank}-v{version}.bin"
                try:
                    path.unlink()
                except FileNotFoundError:
                    continue
            deleted.append(version)
        return deleted

    def gc_superseded(self, rank: Rank) -> list[int]:
        """Delete every version unreachable from the newest restorable
        self-contained checkpoint of *rank*; returns what was deleted.

        Stronger than the automatic compaction-point GC (which retains
        one full chain window): this keeps only the newest version that
        both passes its integrity check and depends on no older file —
        a full-blob/legacy checkpoint, or a delta whose manifest says
        self-contained. Meant for explicit quiesce points (a supervisor
        after a verified recovery line, an operator reclaiming space);
        nothing below the survivor can be referenced by any later delta,
        because chains only ever grow from their own compaction base.
        """
        keep_from = None
        for version in reversed(self.versions(rank)):
            try:
                data = self._read_raw(rank, version)
                if data.startswith(_DELTA_MAGIC):
                    payload = self._checked_payload(
                        data, f"r{rank} v{version}")
                    base_plus1, _, _ = _D_HEAD.unpack_from(payload)
                    if base_plus1 != 0:
                        continue  # delta: needs an older base file
                self.load_blob(rank, version)
            except ReproError:
                continue
            keep_from = version
            break
        if keep_from is None:
            return []
        return self._delete_versions_below(rank, keep_from)

    def _read_raw(self, rank: Rank, version: int) -> bytes:
        if self._dir is None:
            try:
                return self._mem[(rank, version)]
            except KeyError:
                raise ReproError(
                    f"no checkpoint for rank {rank} version {version}"
                ) from None
        path = self._dir / f"ckpt-r{rank}-v{version}.bin"
        if not path.exists():
            raise ReproError(f"no checkpoint file {path}")
        return path.read_bytes()

    def load_blob(self, rank: Rank, version: int) -> bytes:
        data = self._read_raw(rank, version)
        name = f"r{rank} v{version}"
        if data.startswith(_DELTA_MAGIC):
            payload = self._checked_payload(data, name)
            parts = self._materialize(rank, version, payload, depth=0)
            return b"".join(parts)
        if not data.startswith(_MAGIC):
            # A torn write of a *new-format* blob can be shorter than the
            # magic itself; such a strict prefix must not pass as legacy.
            if _MAGIC.startswith(data) or _DELTA_MAGIC.startswith(data):
                raise ReproError(f"checkpoint {name} is truncated")
            return data  # legacy headerless blob
        return self._checked_payload(data, name)

    @staticmethod
    def _checked_payload(data: bytes, name: str) -> bytes:
        """Validate one framed file (either magic); return its payload."""
        if len(data) < _HEADER.size:
            raise ReproError(f"checkpoint {name} is truncated")
        _magic, crc, length = _HEADER.unpack_from(data)
        blob = data[_HEADER.size:]
        if len(blob) != length:
            raise ReproError(
                f"checkpoint {name} is truncated: "
                f"{len(blob)} of {length} payload bytes")
        if zlib.crc32(blob) != crc:
            raise ReproError(f"checkpoint {name} is corrupt "
                             f"(CRC mismatch)")
        return blob

    def _materialize(self, rank: Rank, version: int, payload: bytes,
                     depth: int) -> list[bytes]:
        """Resolve one delta payload into the full ordered part list.

        Unchanged parts are pulled from the base version by *position* —
        the base must itself be delta-format (save_parts only ever chains
        on its own writes), so its manifest gives exact part boundaries.
        The chain is digest-asserted at every level.
        """
        if depth > max(self.delta_max_chain, 64):
            raise ReproError(
                f"checkpoint r{rank} v{version}: delta chain too deep")
        base_plus1, full_nbytes, nparts = _D_HEAD.unpack_from(payload)
        off = _D_HEAD.size
        full_digest = payload[off:off + _D_DIGEST_BYTES]
        off += _D_DIGEST_BYTES
        records = []
        for _ in range(nparts):
            records.append(_D_PART.unpack_from(payload, off))
            off += _D_PART.size
        base_parts: list[bytes] | None = None
        if any(not changed for _len, changed, _d in records):
            if base_plus1 == 0:
                raise ReproError(
                    f"checkpoint r{rank} v{version}: unchanged parts "
                    f"in a self-contained delta")
            base_version = base_plus1 - 1
            base_raw = self._read_raw(rank, base_version)
            if not base_raw.startswith(_DELTA_MAGIC):
                raise ReproError(
                    f"checkpoint r{rank} v{version}: base v{base_version} "
                    f"is not delta-format")
            base_payload = self._checked_payload(
                base_raw, f"r{rank} v{base_version}")
            base_parts = self._materialize(rank, base_version,
                                           base_payload, depth + 1)
        parts: list[bytes] = []
        for i, (part_len, changed, digest) in enumerate(records):
            if changed:
                part = payload[off:off + part_len]
                off += part_len
            else:
                if i >= len(base_parts):
                    raise ReproError(
                        f"checkpoint r{rank} v{version}: part {i} missing "
                        f"from base")
                part = base_parts[i]
            if len(part) != part_len or _part_digest(part) != digest:
                raise ReproError(
                    f"checkpoint r{rank} v{version}: part {i} digest "
                    f"mismatch")
            parts.append(part)
        if sum(len(p) for p in parts) != full_nbytes \
                or _part_digest(b"".join(parts)) != full_digest:
            raise ReproError(
                f"checkpoint r{rank} v{version}: materialized state "
                f"digest mismatch")
        return parts

    # -- catalogue ----------------------------------------------------------
    def versions(self, rank: Rank) -> list[int]:
        if self._dir is None:
            return sorted(v for r, v in self._mem if r == rank)
        prefix = f"ckpt-r{rank}-v"
        out = []
        for p in self._dir.glob(f"{prefix}*.bin"):
            tail = p.name[len(prefix):-4]
            if tail.isdigit():
                out.append(int(tail))
        return sorted(out)

    def ranks(self) -> list[Rank]:
        if self._dir is None:
            return sorted({r for r, _ in self._mem})
        out = set()
        for p in self._dir.glob("ckpt-r*-v*.bin"):
            head = p.name[len("ckpt-r"):].split("-v", 1)[0]
            if head.isdigit():
                out.add(int(head))
        return sorted(out)

    def latest_complete_version(self, rank: Rank) -> int | None:
        """Newest version of *rank* whose blob passes its integrity check.

        This is the restore selector under crash-during-checkpoint: a
        torn or corrupt newest file (the write the crash interrupted,
        had it not been atomic — or a file damaged after the fact) is
        skipped with its reason logged by the caller, and the scan walks
        back to the newest *complete* one.
        """
        for version in reversed(self.versions(rank)):
            try:
                self.load_blob(rank, version)
            except ReproError:
                continue
            return version
        return None

    def latest_common_version(self, nranks: int) -> int | None:
        """Largest version every one of ``nranks`` ranks has stored.

        This is the recovery line: a crash may interrupt version *k* with
        only some ranks saved, in which case everyone restarts from
        *k - 1*.
        """
        common: set[int] | None = None
        for rank in range(nranks):
            versions = set(self.versions(rank))
            common = versions if common is None else (common & versions)
            if not common:
                return None
        return max(common) if common else None


def checkpoint_state(store: CheckpointStore, rank: Rank, version: int,
                     state: dict, arch: Architecture = NATIVE) -> int:
    """Encode and store one rank's state; returns the bytes written.

    A delta-mode store diffs the encoded part list against the rank's
    previous version and writes only what changed; otherwise the full
    blob is written as before.
    """
    if store.delta:
        return store.save_parts(rank, version,
                                encode_parts(state, arch))
    blob = encode(state, arch)
    store.save_blob(rank, version, blob)
    return len(blob)


def restore_state(store: CheckpointStore, rank: Rank, version: int) -> dict:
    """Load and decode one rank's state at *version*."""
    state = decode(store.load_blob(rank, version))
    if not isinstance(state, dict):
        raise ReproError(
            f"checkpoint r{rank} v{version} is {type(state).__name__}, "
            "expected dict")
    return state

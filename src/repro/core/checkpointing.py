"""Application-level checkpoint/restart (the fault-tolerance motivation).

The paper lists fault tolerance among the motivations for state-transfer
machinery, and §7 discusses checkpoint-based systems at length. This
module provides the classic *application-level* variant for SPMD codes on
top of the reproduction's machine-independent codec:

* each rank calls :meth:`SnowAPI-style checkpoint <CheckpointStore>`
  at an **iteration boundary** — the same places the migration poll
  points live. For loop-synchronous programs these boundaries are
  message-quiescent by construction (every message sent in an iteration
  is received in it), so the set of per-rank checkpoints with a common
  version number is globally consistent *without* any runtime
  coordination;
* after a crash (or intentionally — "users can crash a process
  intentionally and restart ... on a new machine", §1), the computation
  restarts from the latest version every rank completed, on any hosts,
  any architectures: blobs are self-describing.

What this deliberately does **not** do is checkpoint mid-iteration with
messages in flight — capturing channel state at arbitrary points is the
coordinated-checkpointing territory of CoCheck (see
:mod:`repro.baselines.cocheck` for that mechanism and its costs).
"""

from __future__ import annotations

import struct
import zlib
from pathlib import Path

from repro.codec import NATIVE, Architecture, decode, encode
from repro.util.errors import ReproError
from repro.util.fsio import atomic_write_bytes
from repro.vm.ids import Rank

__all__ = ["CheckpointStore", "checkpoint_state", "restore_state"]

#: Disk-blob integrity header: magic, CRC-32 and length of the payload.
#: A blob written before the header existed starts with the codec's own
#: bytes, never this magic, so legacy files still load.
_MAGIC = b"RPCK1\x00"
_HEADER = struct.Struct(">6sIQ")


class CheckpointStore:
    """Versioned per-rank checkpoint blobs, in memory or on disk.

    Disk layout (when *directory* is given): one file per checkpoint,
    ``ckpt-r<rank>-v<version>.bin``. Writes are crash-safe — payloads
    carry a CRC-framed header and land via fsync-and-rename — so a file
    that exists is either complete or detectably torn, never silently
    half-written into the codec.
    """

    def __init__(self, directory: str | Path | None = None):
        self._dir = Path(directory) if directory is not None else None
        if self._dir is not None:
            self._dir.mkdir(parents=True, exist_ok=True)
        self._mem: dict[tuple[Rank, int], bytes] = {}

    # -- raw blob access -------------------------------------------------
    def save_blob(self, rank: Rank, version: int, blob: bytes) -> None:
        if self._dir is None:
            self._mem[(rank, version)] = blob
        else:
            framed = _HEADER.pack(_MAGIC, zlib.crc32(blob), len(blob)) + blob
            atomic_write_bytes(
                self._dir / f"ckpt-r{rank}-v{version}.bin", framed)

    def load_blob(self, rank: Rank, version: int) -> bytes:
        if self._dir is None:
            try:
                return self._mem[(rank, version)]
            except KeyError:
                raise ReproError(
                    f"no checkpoint for rank {rank} version {version}"
                ) from None
        path = self._dir / f"ckpt-r{rank}-v{version}.bin"
        if not path.exists():
            raise ReproError(f"no checkpoint file {path}")
        data = path.read_bytes()
        if not data.startswith(_MAGIC):
            # A torn write of a *new-format* blob can be shorter than the
            # magic itself; such a strict prefix must not pass as legacy.
            if _MAGIC.startswith(data):
                raise ReproError(f"checkpoint {path.name} is truncated")
            return data  # legacy headerless blob
        if len(data) < _HEADER.size:
            raise ReproError(f"checkpoint {path.name} is truncated")
        _magic, crc, length = _HEADER.unpack_from(data)
        blob = data[_HEADER.size:]
        if len(blob) != length:
            raise ReproError(
                f"checkpoint {path.name} is truncated: "
                f"{len(blob)} of {length} payload bytes")
        if zlib.crc32(blob) != crc:
            raise ReproError(f"checkpoint {path.name} is corrupt "
                             f"(CRC mismatch)")
        return blob

    # -- catalogue ----------------------------------------------------------
    def versions(self, rank: Rank) -> list[int]:
        if self._dir is None:
            return sorted(v for r, v in self._mem if r == rank)
        prefix = f"ckpt-r{rank}-v"
        out = []
        for p in self._dir.glob(f"{prefix}*.bin"):
            tail = p.name[len(prefix):-4]
            if tail.isdigit():
                out.append(int(tail))
        return sorted(out)

    def ranks(self) -> list[Rank]:
        if self._dir is None:
            return sorted({r for r, _ in self._mem})
        out = set()
        for p in self._dir.glob("ckpt-r*-v*.bin"):
            head = p.name[len("ckpt-r"):].split("-v", 1)[0]
            if head.isdigit():
                out.add(int(head))
        return sorted(out)

    def latest_complete_version(self, rank: Rank) -> int | None:
        """Newest version of *rank* whose blob passes its integrity check.

        This is the restore selector under crash-during-checkpoint: a
        torn or corrupt newest file (the write the crash interrupted,
        had it not been atomic — or a file damaged after the fact) is
        skipped with its reason logged by the caller, and the scan walks
        back to the newest *complete* one.
        """
        for version in reversed(self.versions(rank)):
            try:
                self.load_blob(rank, version)
            except ReproError:
                continue
            return version
        return None

    def latest_common_version(self, nranks: int) -> int | None:
        """Largest version every one of ``nranks`` ranks has stored.

        This is the recovery line: a crash may interrupt version *k* with
        only some ranks saved, in which case everyone restarts from
        *k - 1*.
        """
        common: set[int] | None = None
        for rank in range(nranks):
            versions = set(self.versions(rank))
            common = versions if common is None else (common & versions)
            if not common:
                return None
        return max(common) if common else None


def checkpoint_state(store: CheckpointStore, rank: Rank, version: int,
                     state: dict, arch: Architecture = NATIVE) -> int:
    """Encode and store one rank's state; returns the blob size."""
    blob = encode(state, arch)
    store.save_blob(rank, version, blob)
    return len(blob)


def restore_state(store: CheckpointStore, rank: Rank, version: int) -> dict:
    """Load and decode one rank's state at *version*."""
    state = decode(store.load_blob(rank, version))
    if not isinstance(state, dict):
        raise ReproError(
            f"checkpoint r{rank} v{version} is {type(state).__name__}, "
            "expected dict")
    return state

"""Incremental state collection and chunked transfer (migration fast path).

The paper's Tables 1-2 show migration cost dominated by three sequential
stages: collect the machine-independent state, ship it, restore it. The
fast path turns that sequence into a pipeline: :class:`ChunkSource` slices
the zero-copy part list from :func:`repro.codec.encode_parts` into
``state_chunk`` frames that the migrating process collects-and-sends one
at a time — interleaved with the channel drain, and with the network and
the destination's restore work proceeding concurrently in virtual time.
:class:`ChunkAssembler` is the destination side: it absorbs chunks as they
arrive (charging restore cost per chunk) and joins the payload exactly
once when the last chunk lands.

The chunk stream is bytewise identical to the single
:class:`~repro.core.messages.ExeMemState` blob of the non-pipelined path:
``assemble()`` returns the same bytes ``encode(state, arch)`` would have
produced, so the decoded state cannot differ between modes.

Chunks ride the same reliable FIFO transfer channel as the
received-message-list, and they are *protocol-control* payloads: when a
drain timeout aborts a migration after some chunks were already shipped,
the stranded chunks at the terminating initialized process are dropped as
benign control traffic (the retry re-encodes and re-sends everything on a
fresh channel), so Theorem 2's no-data-loss check is unaffected.
"""

from __future__ import annotations

from typing import Any

from repro.codec import Architecture, encode_parts
from repro.core.messages import StateChunk
from repro.util.errors import MigrationError

__all__ = ["ChunkSource", "ChunkAssembler", "DEFAULT_CHUNK_BYTES"]

#: default state_chunk payload size — small enough that drain traffic is
#: never stalled behind a chunk for long, large enough that per-chunk
#: fixed costs (send_fixed, per-message dispatch) stay negligible
DEFAULT_CHUNK_BYTES = 256 * 1024


class ChunkSource:
    """Slices one encoded state into :class:`StateChunk` payloads.

    Encoding happens eagerly (the state must be captured at one point in
    virtual time — the paper's collect step), but into zero-copy parts:
    large array buffers are never flattened on the source host, only
    sliced into per-chunk ``memoryview`` groups.
    """

    def __init__(self, state: Any, arch: Architecture,
                 chunk_bytes: int = DEFAULT_CHUNK_BYTES):
        if chunk_bytes <= 0:
            raise MigrationError(f"chunk_bytes must be positive: {chunk_bytes}")
        self.arch = arch
        self.chunk_bytes = chunk_bytes
        groups: list[tuple[tuple, int]] = []
        cur: list = []
        cur_n = 0
        total = 0
        for part in encode_parts(state, arch):
            mv = part if isinstance(part, memoryview) else memoryview(part)
            n = mv.nbytes
            total += n
            off = 0
            while off < n:
                take = min(chunk_bytes - cur_n, n - off)
                if off == 0 and take == n:
                    cur.append(part)  # whole part fits — keep it intact
                else:
                    cur.append(mv[off:off + take])
                cur_n += take
                off += take
                if cur_n == chunk_bytes:
                    groups.append((tuple(cur), cur_n))
                    cur = []
                    cur_n = 0
        if cur or not groups:
            groups.append((tuple(cur), cur_n))
        self.total_nbytes = total
        self._groups = groups
        self._next = 0

    @property
    def nchunks(self) -> int:
        return len(self._groups)

    @property
    def exhausted(self) -> bool:
        return self._next >= len(self._groups)

    def next_chunk(self) -> StateChunk:
        """The next chunk frame, in order; ``last`` set on the final one."""
        i = self._next
        if i >= len(self._groups):
            raise MigrationError("chunk source exhausted")
        self._next = i + 1
        parts, nbytes = self._groups[i]
        return StateChunk(seq=i, parts=parts, nbytes=nbytes,
                          last=self._next == len(self._groups),
                          total_nbytes=self.total_nbytes,
                          src_arch=self.arch.name)


class ChunkAssembler:
    """Destination-side reassembly of a :class:`ChunkSource` stream.

    The transfer channel is FIFO, so chunks arrive in sequence; a gap or
    duplicate means a protocol bug, not a network condition, and raises.
    """

    def __init__(self) -> None:
        self._parts: list = []
        self.nbytes = 0
        self.nchunks = 0
        self.complete = False
        self.total_nbytes: int | None = None
        self.src_arch: str | None = None
        #: virtual seconds of restore cost charged while absorbing chunks
        self.restore_seconds = 0.0

    def add(self, chunk: StateChunk) -> None:
        if self.complete:
            raise MigrationError(
                f"state chunk {chunk.seq} after the stream completed")
        if chunk.seq != self.nchunks:
            raise MigrationError(
                f"state chunk out of order: got {chunk.seq}, "
                f"expected {self.nchunks}")
        self._parts.extend(chunk.parts)
        self.nbytes += chunk.nbytes
        self.nchunks += 1
        if chunk.last:
            if chunk.total_nbytes != self.nbytes:
                raise MigrationError(
                    f"state stream truncated: got {self.nbytes} bytes, "
                    f"header said {chunk.total_nbytes}")
            self.total_nbytes = chunk.total_nbytes
            self.src_arch = chunk.src_arch
            self.complete = True

    def assemble(self) -> bytes:
        """Join the received parts into the full blob (the one copy)."""
        if not self.complete:
            raise MigrationError("state stream incomplete")
        return b"".join(self._parts)

"""Incremental state collection and chunked transfer (migration fast path).

The paper's Tables 1-2 show migration cost dominated by three sequential
stages: collect the machine-independent state, ship it, restore it. The
fast path turns that sequence into a pipeline: :class:`ChunkSource` slices
the zero-copy part list from :func:`repro.codec.encode_parts` into
``state_chunk`` frames that the migrating process collects-and-sends one
at a time — interleaved with the channel drain, and with the network and
the destination's restore work proceeding concurrently in virtual time.
:class:`ChunkAssembler` is the destination side: it absorbs chunks as they
arrive (charging restore cost per chunk) and joins the payload exactly
once when the last chunk lands.

Chunk sizing is a *policy*: the source slices lazily, asking its size
provider — a fixed integer, or anything with a ``next_size()`` method
such as :class:`repro.core.adaptive.ChunkController` — how large the
*next* chunk should be just before cutting it. The adaptive controller
feeds per-chunk ship latencies back between cuts, so a slow link gets
small pipeline-friendly chunks and a fast one gets large amortized ones.

The chunk stream is bytewise identical to the single
:class:`~repro.core.messages.ExeMemState` blob of the non-pipelined path:
``assemble()`` returns the same bytes ``encode(state, arch)`` would have
produced, so the decoded state cannot differ between modes. (Chunk
*boundaries* never affect the assembled bytes — only the framing.)

Chunks ride the same reliable FIFO transfer channel as the
received-message-list, and they are *protocol-control* payloads: when a
drain timeout aborts a migration after some chunks were already shipped,
the stranded chunks at the terminating initialized process are dropped as
benign control traffic (the retry re-encodes and re-sends everything on a
fresh channel), so Theorem 2's no-data-loss check is unaffected.
"""

from __future__ import annotations

from typing import Any

from repro.codec import Architecture, encode_parts
from repro.core.messages import StateChunk
from repro.util.errors import MigrationError

__all__ = ["ChunkSource", "ChunkAssembler", "DEFAULT_CHUNK_BYTES"]

#: default state_chunk payload size — small enough that drain traffic is
#: never stalled behind a chunk for long, large enough that per-chunk
#: fixed costs (send_fixed, per-message dispatch) stay negligible
DEFAULT_CHUNK_BYTES = 256 * 1024


class ChunkSource:
    """Slices one encoded state into :class:`StateChunk` payloads.

    Encoding happens eagerly (the state must be captured at one point in
    virtual time — the paper's collect step), but into zero-copy parts:
    large array buffers are never flattened on the source host, only
    sliced into per-chunk ``memoryview`` groups — and the slicing itself
    is lazy, one chunk per :meth:`next_chunk`, sized by the provider at
    the moment of the cut.

    ``parts`` lets a caller that already holds the encoded part list
    (e.g. the delta-checkpoint path, which encodes and hashes the same
    state for its manifest) hand it over instead of encoding twice.
    """

    def __init__(self, state: Any = None, arch: Architecture = None,
                 chunk_bytes=DEFAULT_CHUNK_BYTES, *, parts: list | None = None):
        if arch is None:
            raise MigrationError("ChunkSource requires an architecture")
        self._sizer = None
        if hasattr(chunk_bytes, "next_size"):
            self._sizer = chunk_bytes
        elif not isinstance(chunk_bytes, int) or chunk_bytes <= 0:
            raise MigrationError(
                f"chunk_bytes must be a positive int or a size provider: "
                f"{chunk_bytes!r}")
        self.arch = arch
        self.chunk_bytes = chunk_bytes
        if parts is None:
            parts = encode_parts(state, arch)
        mvs: list[tuple[Any, "memoryview", int]] = []
        total = 0
        for part in parts:
            mv = part if isinstance(part, memoryview) else memoryview(part)
            n = mv.nbytes
            total += n
            if n:
                mvs.append((part, mv, n))
        self.total_nbytes = total
        self._mvs = mvs
        self._pi = 0   # index of the part the cursor is in
        self._off = 0  # byte offset within that part
        self._sent = 0 # bytes emitted so far
        self._seq = 0
        self._done = False

    @property
    def nchunks(self) -> int:
        """Chunks emitted so far (the final count once exhausted)."""
        return self._seq

    @property
    def sent_nbytes(self) -> int:
        """Bytes emitted so far, for live transfer-progress surfaces.

        With concurrent migration windows sharing one link, per-window
        progress is how an operator tells a transfer that is pacing
        itself under a contended bandwidth budget from one that is
        stuck — the mp worker exports it as the ``mp.transfer_nbytes``
        gauge."""
        return self._sent

    @property
    def progress(self) -> float:
        """Fraction of the encoded state emitted (1.0 once exhausted)."""
        if self.total_nbytes == 0:
            return 1.0 if self._done else 0.0
        return self._sent / self.total_nbytes

    @property
    def exhausted(self) -> bool:
        return self._done

    def _next_size(self) -> int:
        if self._sizer is None:
            return self.chunk_bytes
        size = self._sizer.next_size()
        if not isinstance(size, int) or size <= 0:
            raise MigrationError(f"size provider returned {size!r}")
        return size

    def next_chunk(self) -> StateChunk:
        """The next chunk frame, in order; ``last`` set on the final one."""
        if self._done:
            raise MigrationError("chunk source exhausted")
        target = self._next_size()
        cur: list = []
        cur_n = 0
        while cur_n < target and self._pi < len(self._mvs):
            part, mv, n = self._mvs[self._pi]
            take = min(target - cur_n, n - self._off)
            if self._off == 0 and take == n:
                cur.append(part)  # whole part fits — keep it intact
            else:
                cur.append(mv[self._off:self._off + take])
            cur_n += take
            self._off += take
            if self._off == n:
                self._pi += 1
                self._off = 0
        self._sent += cur_n
        seq = self._seq
        self._seq = seq + 1
        self._done = self._sent >= self.total_nbytes
        return StateChunk(seq=seq, parts=tuple(cur), nbytes=cur_n,
                          last=self._done,
                          total_nbytes=self.total_nbytes,
                          src_arch=self.arch.name)


class ChunkAssembler:
    """Destination-side reassembly of a :class:`ChunkSource` stream.

    The transfer channel is FIFO, so chunks arrive in sequence; a gap or
    duplicate means a protocol bug, not a network condition, and raises.
    """

    def __init__(self) -> None:
        self._parts: list = []
        self.nbytes = 0
        self.nchunks = 0
        self.complete = False
        self.total_nbytes: int | None = None
        self.src_arch: str | None = None
        #: virtual seconds of restore cost charged while absorbing chunks
        self.restore_seconds = 0.0

    def add(self, chunk: StateChunk) -> None:
        if self.complete:
            raise MigrationError(
                f"state chunk {chunk.seq} after the stream completed")
        if chunk.seq != self.nchunks:
            raise MigrationError(
                f"state chunk out of order: got {chunk.seq}, "
                f"expected {self.nchunks}")
        self._parts.extend(chunk.parts)
        self.nbytes += chunk.nbytes
        self.nchunks += 1
        if chunk.last:
            if chunk.total_nbytes != self.nbytes:
                raise MigrationError(
                    f"state stream truncated: got {self.nbytes} bytes, "
                    f"header said {chunk.total_nbytes}")
            self.total_nbytes = chunk.total_nbytes
            self.src_arch = chunk.src_arch
            self.complete = True

    def assemble(self) -> bytes:
        """Join the received parts into the full blob (the one copy)."""
        if not self.complete:
            raise MigrationError("state stream incomplete")
        return b"".join(self._parts)

"""Protocol-level messages (paper Section 3).

Three families:

* **application data** — :class:`DataMessage`, what ``snow_send`` /
  ``snow_recv`` carry; matched by ``(src, tag)`` with wildcards like PVM;
* **in-channel control** — :class:`ChannelHello` (completes connection
  establishment), :class:`PeerMigrating` (the migrating process's last
  message on each channel), :class:`EndOfMessage` (a peer's last message
  when it closes a coordinated channel), and the two state-transfer
  payloads :class:`RecvListTransfer` / :class:`ExeMemState`;
* **scheduler RPCs** — connectionless messages between processes and the
  scheduler for lookup and migration coordination.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.vm.ids import Rank, VmId

__all__ = [
    "ANY",
    "DataMessage",
    "ChannelHello",
    "PeerMigrating",
    "EndOfMessage",
    "RecvListTransfer",
    "ExeMemState",
    "StateChunk",
    "LookupRequest",
    "LookupReply",
    "MigrateRequest",
    "MigrationStart",
    "MigrationAbort",
    "NewProcessReply",
    "RestoreComplete",
    "PLSnapshot",
    "MigrationCommit",
    "SchedulerAck",
    "TerminateNotice",
    "SIG_MIGRATE",
    "SIG_DISCONNECT",
]

#: Wildcard for ``snow_recv`` source / tag matching (PVM's -1).
ANY = None

#: Signal names (the prototype used SIGUSR1 / SIGUSR2).
SIG_MIGRATE = "SIG_MIGRATE"
SIG_DISCONNECT = "SIG_DISCONNECT"


# -- application data --------------------------------------------------------

@dataclass
class DataMessage:
    """An application message as stored in the received-message-list."""

    src: Rank
    tag: int
    body: Any
    nbytes: int
    #: virtual time of the snow_send call (space-time diagram rendering)
    sent_at: float = 0.0

    def matches(self, src: Rank | None, tag: int | None) -> bool:
        """PVM-style matching: ``None`` is a wildcard on either field."""
        return (src is ANY or src == self.src) and (tag is ANY or tag == self.tag)


# -- in-channel control -------------------------------------------------------

@dataclass(frozen=True)
class ChannelHello:
    """First message on a fresh channel: tells the acceptor who connected."""

    src_rank: Rank
    #: protocol-control payloads may legitimately arrive after their target
    #: terminated (e.g. peer_migrating to a peer that just finished); data
    #: payloads may not (that would be message loss).
    protocol_control = True


@dataclass(frozen=True)
class PeerMigrating:
    """The migrating process's last message on an existing channel.

    Its reception implies every earlier message on that channel has been
    received (FIFO), and instructs the receiver to close the connection.
    """

    src_rank: Rank
    protocol_control = True


@dataclass(frozen=True)
class EndOfMessage:
    """The last message on a channel before its sender closes it.

    Sent both by coordinated peers during a migration (Fig. 6) and by a
    terminating process on every still-open channel (the in-band FIN that
    lets a concurrently migrating peer finish its drain instead of waiting
    forever for a dead process).
    """

    src_rank: Rank
    protocol_control = True


@dataclass
class RecvListTransfer:
    """The migrating process's received-message-list, shipped to the new
    process (prepended there — "ListA before ListB")."""

    messages: list[DataMessage]
    nbytes: int


@dataclass
class ExeMemState:
    """Machine-independent execution + memory state blob (paper refs [10,11])."""

    blob: bytes
    nbytes: int
    src_arch: str


@dataclass
class StateChunk:
    """One slice of the machine-independent state (migration fast path).

    The pipelined transfer ships the :class:`ExeMemState` payload as a
    FIFO sequence of these, starting while the channel drain is still in
    progress; the concatenation of all chunk parts is byte-identical to
    the blob the non-pipelined path would have sent. Marked protocol
    control because a drain-timeout abort can legitimately strand chunks
    at a terminating initialized process — the retry re-sends the whole
    stream on a fresh channel, so no state is lost.
    """

    seq: int
    parts: tuple
    nbytes: int
    last: bool
    total_nbytes: int
    src_arch: str
    protocol_control = True


# -- scheduler RPCs --------------------------------------------------------------

@dataclass(frozen=True)
class LookupRequest:
    """connect() consulting the scheduler for a process's location."""

    rank: Rank
    reply_to: VmId
    token: int


@dataclass(frozen=True)
class LookupReply:
    """Scheduler's answer: execution status and current/new vmid.

    ``status`` is one of ``"running"``, ``"migrate"`` (paper Fig. 3 line
    11 — redirect to the initialized process), ``"terminated"``, or —
    from a distributed directory node only — ``"unknown"`` (no record
    held yet; the client backs off and retries, see
    :mod:`repro.directory.client`). ``init_vmid`` names the currently
    designated initialized process for the rank, if any — an initialized
    process waiting out a lossy state transfer polls the scheduler and
    uses it to learn whether it is still wanted (see
    :func:`repro.core.migration._pump_transfer`). ``hops`` counts
    directory forwarding steps taken to answer (0 for the scheduler and
    sharded nodes; the routing-cost metric for the chord backend).
    """

    rank: Rank
    status: str
    vmid: VmId | None
    token: int
    init_vmid: VmId | None = None
    hops: int = 0


@dataclass(frozen=True)
class MigrateRequest:
    """User request to the scheduler: move *rank* to *dest_host*."""

    rank: Rank
    dest_host: str


@dataclass(frozen=True)
class MigrationStart:
    """Migrating process → scheduler: migration operations have started."""

    rank: Rank
    old_vmid: VmId


@dataclass(frozen=True)
class NewProcessReply:
    """Scheduler → migrating process: vmid of the initialized process.

    Also carries the migration's causal ``trace_id`` (minted by the
    scheduler when it created the initialized process), so the source
    stamps its freeze/reject/drain/transfer spans with the same id the
    destination already holds.
    """

    rank: Rank
    new_vmid: VmId
    trace_id: str | None = None


@dataclass(frozen=True)
class RestoreComplete:
    """Initialized process → scheduler: state received and restored."""

    rank: Rank
    new_vmid: VmId


@dataclass
class PLSnapshot:
    """Scheduler → initialized process: current PL table + the old vmid."""

    rank: Rank
    table: dict[Rank, VmId] = field(default_factory=dict)
    old_vmid: VmId | None = None


@dataclass(frozen=True)
class MigrationCommit:
    """Initialized process → scheduler: migration fully committed.

    ``ack=True`` asks the scheduler for a :class:`SchedulerAck` so a
    retrying sender knows the notice landed (hardened mode only — the
    default keeps the paper's fire-and-forget flow byte-identical).
    """

    rank: Rank
    ack: bool = False


@dataclass(frozen=True)
class MigrationAbort:
    """Migrating process → scheduler: this migration attempt is off.

    Sent when the channel drain does not finish within the configured
    drain timeout (e.g. a coordinated peer's traffic is being disrupted).
    The process reverts to normal execution; the scheduler tells the
    initialized process to exit and may re-issue the migration request.
    """

    rank: Rank
    old_vmid: VmId
    reason: str = "drain-timeout"


@dataclass(frozen=True)
class SchedulerAck:
    """Scheduler → process: positive acknowledgement of a notice.

    ``kind`` names the RPC being acknowledged (``"migration_commit"``,
    ``"migration_abort"`` or ``"terminate"``), so a retried sender can
    match the ack to the right request. Idempotent on the scheduler side:
    a duplicate notice simply gets another ack.
    """

    kind: str
    rank: Rank


@dataclass(frozen=True)
class TerminateNotice:
    """Application process → scheduler: this rank has finished.

    ``ack=True`` requests a :class:`SchedulerAck` (hardened mode).
    """

    rank: Rank
    ack: bool = False


@dataclass
class IndirectData:
    """A data message travelling PVM's *indirect* path (daemon-routed).

    No connection establishment, per-message daemon hops instead — the
    communication mode the paper's protocol deliberately does *not* use
    (and that MPVM's forwarding relies on). Provided for the transport
    ablation; carries no migration support.
    """

    message: DataMessage


@dataclass(frozen=True)
class InitAbort:
    """Scheduler → initialized process: the migration will never happen.

    Sent when the migrating process terminated before acting on the
    migration request; the waiting initialized process exits instead of
    blocking forever.
    """

    rank: Rank
    reason: str = "rank-terminated"

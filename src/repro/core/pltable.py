"""The process-location (PL) table (paper Section 2.1).

Maps application ranks to vmids. A copy lives in every process and in the
scheduler; copies go stale when processes migrate and are refreshed *on
demand*: a sender only learns a peer's new location when a connection
attempt is rejected and it consults the scheduler — the protocol's
no-broadcast property.
"""

from __future__ import annotations

from typing import Iterator

from repro.util.errors import ProtocolError
from repro.vm.ids import Rank, VmId

__all__ = ["PLTable"]


class PLTable:
    """A rank → vmid mapping with explicit update semantics."""

    def __init__(self, entries: dict[Rank, VmId] | None = None):
        self._table: dict[Rank, VmId] = dict(entries or {})

    def __contains__(self, rank: Rank) -> bool:
        return rank in self._table

    def __len__(self) -> int:
        return len(self._table)

    def __iter__(self) -> Iterator[Rank]:
        return iter(sorted(self._table))

    def lookup(self, rank: Rank) -> VmId:
        """Current belief about where *rank* lives (may be stale)."""
        try:
            return self._table[rank]
        except KeyError:
            raise ProtocolError(f"rank {rank} not in PL table") from None

    def update(self, rank: Rank, vmid: VmId) -> None:
        """Record a (new) location for *rank* (Fig. 3 line 12)."""
        self._table[rank] = vmid

    def remove(self, rank: Rank) -> None:
        self._table.pop(rank, None)

    def replace_all(self, entries: dict[Rank, VmId]) -> None:
        """Install a full snapshot (initialize(), Fig. 7 line 6)."""
        self._table = dict(entries)

    def snapshot(self) -> dict[Rank, VmId]:
        """An independent copy of the mapping."""
        return dict(self._table)

    def copy(self) -> "PLTable":
        return PLTable(self._table)

    def ranks(self) -> list[Rank]:
        return sorted(self._table)

    def __repr__(self) -> str:
        inner = ", ".join(f"{r}->{v}" for r, v in sorted(self._table.items()))
        return f"<PLTable {inner}>"

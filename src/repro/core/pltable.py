"""The process-location (PL) table (paper Section 2.1).

Maps application ranks to vmids. A copy lives in every process and in the
scheduler; copies go stale when processes migrate and are refreshed *on
demand*: a sender only learns a peer's new location when a connection
attempt is rejected and it consults the scheduler — the protocol's
no-broadcast property.
"""

from __future__ import annotations

from typing import Iterator

from repro.util.errors import ProtocolError
from repro.vm.ids import Rank, VmId

__all__ = ["PLTable"]


class PLTable:
    """A rank → vmid mapping with explicit update and staleness semantics.

    Entries never claim to be *correct* — copies go stale the moment a
    peer migrates — but they carry an explicit staleness bit: a
    ``conn_nack`` marks the entry stale (:meth:`invalidate`) without
    discarding it, because the last-known location is still what the
    retry logic must chase (a re-sent request targets it until the
    directory answers). A subsequent :meth:`update` restores freshness.
    """

    def __init__(self, entries: dict[Rank, VmId] | None = None):
        self._table: dict[Rank, VmId] = dict(entries or {})
        self._stale: set[Rank] = set()

    def __contains__(self, rank: Rank) -> bool:
        return rank in self._table

    def __len__(self) -> int:
        return len(self._table)

    def __iter__(self) -> Iterator[Rank]:
        return iter(sorted(self._table))

    def lookup(self, rank: Rank) -> VmId:
        """Current belief about where *rank* lives (may be stale)."""
        try:
            return self._table[rank]
        except KeyError:
            raise ProtocolError(f"rank {rank} not in PL table") from None

    def get(self, rank: Rank, default: VmId | None = None) -> VmId | None:
        """Like :meth:`lookup` but returns *default* for unknown ranks."""
        return self._table.get(rank, default)

    def update(self, rank: Rank, vmid: VmId) -> None:
        """Record a (new) location for *rank* (Fig. 3 line 12)."""
        self._table[rank] = vmid
        self._stale.discard(rank)

    def invalidate(self, rank: Rank) -> None:
        """Mark *rank*'s entry stale (a ``conn_nack`` proved it wrong).

        The entry itself is kept — :meth:`lookup` still returns the
        last-known vmid so retries have a target — but :meth:`is_stale`
        reports it until the next :meth:`update`. Idempotent; unknown
        ranks are a no-op (there is nothing to distrust).
        """
        if rank in self._table:
            self._stale.add(rank)

    def is_stale(self, rank: Rank) -> bool:
        """Has this entry been invalidated since it was last updated?"""
        return rank in self._stale

    def remove(self, rank: Rank) -> None:
        self._table.pop(rank, None)
        self._stale.discard(rank)

    def replace_all(self, entries: dict[Rank, VmId]) -> None:
        """Install a full snapshot (initialize(), Fig. 7 line 6)."""
        self._table = dict(entries)
        self._stale.clear()

    def snapshot(self) -> dict[Rank, VmId]:
        """An independent copy of the mapping."""
        return dict(self._table)

    def copy(self) -> "PLTable":
        out = PLTable(self._table)
        out._stale = set(self._stale)  # disproved entries stay disproved
        return out

    def ranks(self) -> list[Rank]:
        return sorted(self._table)

    def __repr__(self) -> str:
        inner = ", ".join(f"{r}->{v}" for r, v in sorted(self._table.items()))
        return f"<PLTable {inner}>"

"""Application launcher: wires programs, endpoints, scheduler and hosts.

:class:`Application` is the reproduction's equivalent of starting a SNOW
computation: it spawns the scheduler, places one migration-enabled process
per rank on its host, distributes the initial PL table, and provides the
user-side migration request (:meth:`migrate_at` — the paper's "user sends
a request to the scheduler").
"""

from __future__ import annotations

from typing import Any, Callable

from repro.codec import NATIVE, Architecture
from repro.core.adaptive import BandwidthBudget, coerce_chunk_bytes
from repro.core.gang import GangAdmission
from repro.core.api import Program, SnowAPI
from repro.core.endpoint import MigrationEndpoint
from repro.core.messages import MigrateRequest
from repro.core.migration import run_initialization
from repro.core.pltable import PLTable
from repro.core.scheduler import SchedulerState, scheduler_main
from repro.directory.daemons import DirectoryCluster
from repro.directory.spec import DirectorySpec
from repro.util.errors import ProtocolError
from repro.util.retry import RetryPolicy
from repro.vm.ids import Rank, VmId
from repro.vm.messages import ControlEnvelope
from repro.vm.virtual_machine import VirtualMachine

__all__ = ["Application"]


class Application:
    """A distributed computation of ``nranks`` migration-enabled processes.

    Parameters
    ----------
    vm:
        The virtual machine (hosts must already be added).
    program:
        The migration-enabled program, ``program(api, state)``.
    placement:
        Host of each rank: ``placement[r]`` is rank *r*'s initial host.
    scheduler_host:
        Where the scheduler runs.
    architectures:
        Optional host → :class:`Architecture` mapping for heterogeneous
        state encoding; hosts default to :data:`NATIVE`.
    migratable:
        ``False`` runs the "original code" configuration of Table 1: same
        message flow, no migration-layer overheads, migration disabled.
    retry:
        Optional :class:`~repro.util.retry.RetryPolicy` hardening every
        endpoint's control path against the fault model of
        :mod:`repro.sim.faults` (timeouts + bounded exponential backoff).
        ``None`` keeps the paper's reliable-network behaviour.
    drain_timeout:
        Per-migration bound on the channel drain; on expiry the migration
        aborts cleanly and the scheduler may retry it. ``None`` disables.
    migration_retry_limit:
        How many times the scheduler re-issues an aborted migration
        request per rank.
    directory:
        Location-directory backend: ``None`` / ``"centralized"`` (the
        paper's scheduler-resident table), ``"sharded"``, ``"chord"``,
        or a full :class:`~repro.directory.spec.DirectorySpec`. With a
        distributed backend the launcher spawns the directory daemons,
        seeds them with the initial placement, attaches the scheduler's
        publisher and gives every endpoint a lookup client.
    fastpath:
        ``True`` (default) migrates state via the pipelined chunked
        transfer (collection, network and restore overlap in virtual
        time). ``False`` reproduces the strictly sequential Fig. 5 flow
        — the A/B baseline for ``BENCH_fastpath.json`` and for
        bisecting fast-path regressions.
    chunk_bytes:
        ``state_chunk`` payload size for the fast path; ``None`` uses
        :data:`~repro.core.streaming.DEFAULT_CHUNK_BYTES`, an int fixes
        the size, ``"adaptive"`` (or an :class:`~repro.core.adaptive.
        AdaptiveChunkPolicy`) sizes chunks AIMD-style from observed
        per-chunk ship latency on the transfer link.
    migration_concurrency:
        Cap on simultaneously open migration windows. ``None``
        (default) lets windows for distinct ranks overlap freely —
        same-rank requests always queue behind the open window — while
        ``1`` reproduces the pre-gang fully serialized behavior. See
        :mod:`repro.core.gang` and docs/protocol.md.
    """

    def __init__(self, vm: VirtualMachine, program: Program,
                 placement: list[str], scheduler_host: str,
                 architectures: dict[str, Architecture] | None = None,
                 migratable: bool = True, name: str = "app",
                 checkpoint_store=None, restore_version: int | None = None,
                 transport: str = "direct",
                 retry: "RetryPolicy | None" = None,
                 drain_timeout: float | None = None,
                 migration_retry_limit: int = 2,
                 directory: "DirectorySpec | str | None" = None,
                 fastpath: bool = True,
                 chunk_bytes=None,
                 migration_concurrency: int | None = None):
        self.vm = vm
        self.program = program
        #: "direct" (connection-oriented) or "indirect" (daemon-routed)
        self.transport = transport
        if transport == "indirect" and migratable:
            raise ProtocolError(
                "indirect transport does not support migration; pass "
                "migratable=False (this is the point of the ablation)")
        #: optional CheckpointStore for api.checkpoint()
        self.checkpoint_store = checkpoint_store
        #: restart every rank from this checkpoint version instead of {}
        self.restore_version = restore_version
        if restore_version is not None and checkpoint_store is None:
            raise ProtocolError(
                "restore_version requires a checkpoint_store")
        self.retry = retry
        self.drain_timeout = drain_timeout
        self.fastpath = fastpath
        self.chunk_bytes = coerce_chunk_bytes(chunk_bytes)
        self.migration_concurrency = migration_concurrency
        #: per-source-host fair-share ledgers for concurrent transfers
        self._bandwidth_budgets: dict[str, BandwidthBudget] = {}
        self.migration_retry_limit = migration_retry_limit
        self.directory_spec = DirectorySpec.coerce(directory)
        #: spawned by start() when the backend is distributed
        self.directory_cluster: DirectoryCluster | None = None
        self.placement = list(placement)
        self.nranks = len(placement)
        self.scheduler_host = scheduler_host
        self.architectures = dict(architectures or {})
        self.migratable = migratable
        self.name = name
        #: current endpoint of each rank (replaced after a migration)
        self.endpoints: dict[Rank, MigrationEndpoint] = {}
        #: every endpoint ever created, including pre-migration incarnations
        self.all_endpoints: list[MigrationEndpoint] = []
        #: per-rank incarnation counter (process names p0, p0.m1, ...)
        self._incarnation: dict[Rank, int] = {}
        self.scheduler_state: SchedulerState | None = None
        self._scheduler_ctx = None
        self._started = False

    # -- setup ------------------------------------------------------------
    def arch_for(self, host: str) -> Architecture:
        return self.architectures.get(host, NATIVE)

    def bandwidth_budget_for(self, host: str) -> BandwidthBudget:
        """The fair-share transfer ledger of one source host.

        Every migration leaving ``host`` draws from the same budget, so
        concurrent transfers split the uplink instead of reading each
        other's queue wait as congestion (see
        :class:`repro.core.adaptive.BandwidthBudget`).
        """
        budget = self._bandwidth_budgets.get(host)
        if budget is None:
            budget = self._bandwidth_budgets[host] = BandwidthBudget(host)
        return budget

    def start(self) -> "Application":
        """Spawn the scheduler and all rank processes (at virtual t=0)."""
        if self._started:
            raise ProtocolError("application already started")
        self._started = True
        vm = self.vm

        master_pl = PLTable()
        self.scheduler_state = SchedulerState(
            pl=master_pl, spawn_initialized=self._spawn_initialized,
            migration_retry_limit=self.migration_retry_limit,
            admission=GangAdmission(concurrency=self.migration_concurrency))
        self._scheduler_ctx = vm.spawn(
            self.scheduler_host, scheduler_main, self.scheduler_state,
            name="scheduler", daemon=True)

        # Spawn every rank first so the PL table is complete before any
        # process body runs (all spawns happen before kernel.run()).
        ctxs = []
        for rank, host in enumerate(self.placement):
            ctx = vm.spawn(host, self._rank_main, rank, name=f"p{rank}",
                           rank=rank)
            self.scheduler_state.directory.install(rank, ctx.vmid)
            ctxs.append(ctx)

        if self.directory_spec.distributed:
            # Spawn the directory daemons and seed the initial placement
            # into their stores synchronously — no startup race between
            # the first lookups and the first published updates.
            self.directory_cluster = DirectoryCluster(
                vm, self.directory_spec, self.scheduler_host)
            self.directory_cluster.seed(self.scheduler_state.directory)
            self.scheduler_state.publisher = \
                self.directory_cluster.make_publisher()
        return self

    def _directory_client(self, rank: Rank):
        if self.directory_cluster is None:
            return None
        return self.directory_cluster.make_client(rank)

    def _rank_main(self, ctx, rank: Rank) -> None:
        endpoint = MigrationEndpoint(
            ctx, rank, self._scheduler_ctx.vmid,
            self.scheduler_state.pl.copy(),
            arch=self.arch_for(ctx.host),
            migration_enabled=self.migratable,
            transport=self.transport,
            retry_policy=self.retry,
            drain_timeout=self.drain_timeout,
            directory_client=self._directory_client(rank),
            fastpath=self.fastpath, chunk_bytes=self.chunk_bytes,
            bandwidth_budget=self.bandwidth_budget_for(ctx.host))
        self.endpoints[rank] = endpoint
        self.all_endpoints.append(endpoint)
        api = SnowAPI(endpoint, self.nranks,
                      checkpoint_store=self.checkpoint_store)
        if self.restore_version is not None:
            from repro.core.checkpointing import restore_state
            t0 = self.vm.kernel.now
            rec_tid = f"sim-rec-r{rank}-v{self.restore_version}"
            self.vm.trace_record(ctx.name, "span_start", phase="recover",
                                 rank=rank, trace_id=rec_tid)
            state = restore_state(self.checkpoint_store, rank,
                                  self.restore_version)
            ctx.burn(self.vm.costs.state_fixed)
            self.vm.trace_record(ctx.name, "checkpoint_restored",
                                 version=self.restore_version)
            self.vm.trace_record(ctx.name, "span_end", phase="recover",
                                 rank=rank, seconds=self.vm.kernel.now - t0,
                                 trace_id=rec_tid)
        else:
            state = {}
        self.program(api, state)
        endpoint.shutdown()

    def _spawn_initialized(self, rank: Rank, dest_host: str) -> VmId:
        """Process initialization on the destination (scheduler callback)."""
        inc = self._incarnation.get(rank, 0) + 1
        self._incarnation[rank] = inc
        # The scheduler appended (and trace-id-stamped) the migration
        # record before invoking this callback; hand the id to the
        # initialized process so its restore/commit spans stitch into
        # the same trace as the source's phases.
        try:
            trace_id = self.scheduler_state.current_record(rank).trace_id
        except LookupError:
            trace_id = None
        ctx = self.vm.spawn(dest_host, self._init_main, rank, trace_id,
                            name=f"p{rank}.m{inc}", rank=rank)
        return ctx.vmid

    def _init_main(self, ctx, rank: Rank,
                   trace_id: str | None = None) -> None:
        endpoint = MigrationEndpoint(
            ctx, rank, self._scheduler_ctx.vmid, PLTable(),
            arch=self.arch_for(ctx.host),
            migration_enabled=True, initializing=True,
            retry_policy=self.retry,
            drain_timeout=self.drain_timeout,
            directory_client=self._directory_client(rank),
            fastpath=self.fastpath, chunk_bytes=self.chunk_bytes,
            bandwidth_budget=self.bandwidth_budget_for(ctx.host),
            trace_id=trace_id)
        self.endpoints[rank] = endpoint
        self.all_endpoints.append(endpoint)
        state = run_initialization(endpoint)
        api = SnowAPI(endpoint, self.nranks,
                      checkpoint_store=self.checkpoint_store)
        self.program(api, state)
        endpoint.shutdown()

    # -- user operations ---------------------------------------------------
    def migrate_at(self, when: float, rank: Rank, dest_host: str) -> None:
        """Schedule a user migration request at virtual time *when*.

        Models the out-of-band user → scheduler request of Section 2.2.
        """
        if not self.migratable:
            raise ProtocolError(
                "cannot migrate an application launched with migratable=False")

        def inject() -> None:
            self._scheduler_ctx.mailbox.put(ControlEnvelope(
                src_vmid=VmId("user", 0),
                msg=MigrateRequest(rank=rank, dest_host=dest_host)))

        if not self._started:
            raise ProtocolError("start() the application first")
        self.vm.kernel.call_at(when, inject)

    def migrate_many(self, when: float,
                     moves: "list[tuple[Rank, str]]") -> None:
        """Request a gang of migrations at virtual time *when*.

        All requests land at the scheduler together; admission opens a
        window per distinct rank immediately (up to
        ``migration_concurrency``) and queues the rest, so independent
        relocations overlap instead of paying one full window each.
        """
        if not self.migratable:
            raise ProtocolError(
                "cannot migrate an application launched with migratable=False")
        if not self._started:
            raise ProtocolError("start() the application first")
        moves = list(moves)

        def inject() -> None:
            for rank, dest_host in moves:
                self._scheduler_ctx.mailbox.put(ControlEnvelope(
                    src_vmid=VmId("user", 0),
                    msg=MigrateRequest(rank=rank, dest_host=dest_host)))

        self.vm.kernel.call_at(when, inject)

    def migrate_after_event(self, kind: str, rank: Rank, dest_host: str,
                            poll_interval: float = 1e-3,
                            actor: str | None = None,
                            **detail_match) -> None:
        """Request a migration as soon as a matching trace event appears.

        Robust way to hit a specific application phase (e.g. "after two
        V-cycles"): trigger on the phase-boundary trace event; the signal
        is then pending at the next poll point. The trace is scanned
        incrementally, so polling stays cheap.
        """
        if not self._started:
            raise ProtocolError("start() the application first")
        trace = self.vm.trace
        scan_pos = [0]

        def matched() -> bool:
            events = trace.events
            for i in range(scan_pos[0], len(events)):
                ev = events[i]
                if ev.kind == kind \
                        and (actor is None or ev.actor == actor) \
                        and all(ev.detail.get(k) == v
                                for k, v in detail_match.items()):
                    return True
            scan_pos[0] = len(events)
            return False

        def check() -> None:
            if matched():
                self._scheduler_ctx.mailbox.put(ControlEnvelope(
                    src_vmid=VmId("user", 0),
                    msg=MigrateRequest(rank=rank, dest_host=dest_host)))
            else:
                self.vm.kernel.call_later(poll_interval, check)

        self.vm.kernel.call_later(0.0, check)

    def run(self, **kwargs: Any) -> "Application":
        """Start (if needed) and drive the computation to completion."""
        if not self._started:
            self.start()
        self.vm.run(**kwargs)
        return self

    # -- results ------------------------------------------------------------
    @property
    def migrations(self):
        return self.scheduler_state.migrations if self.scheduler_state else []

    def total_comm_time(self) -> float:
        """Time spent in snow_send/snow_recv, summed over all incarnations."""
        return sum(ep.stats.comm_time for ep in self.all_endpoints)

    def total_messages(self) -> int:
        return sum(ep.stats.messages_sent for ep in self.all_endpoints)

    def total_bytes(self) -> int:
        return sum(ep.stats.bytes_sent for ep in self.all_endpoints)

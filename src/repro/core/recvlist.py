"""The received-message-list (paper Sections 3.1-3.2).

A user-level FIFO buffer of data messages that have arrived at a process
but have not yet been consumed by the application. It exists because:

* draining channels during migration stores in-transit messages *before*
  the application asks for them;
* a receive for a specific ``(src, tag)`` may pull unrelated messages off
  the wire, which must be kept for later receives;
* on the initialized process, the migrating process's forwarded list is
  *prepended* ("ListA is read before ListB") — the mechanism behind the
  ordering proof of Theorem 3.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Iterator

from repro.core.messages import ANY, DataMessage
from repro.vm.ids import Rank

__all__ = ["ReceivedMessageList"]


class ReceivedMessageList:
    """Ordered store of undelivered :class:`DataMessage` objects."""

    def __init__(self) -> None:
        self._items: deque[DataMessage] = deque()
        #: total messages ever appended (protocol accounting)
        self.total_appended = 0
        #: entries scanned by find() calls (drives the list-search cost and
        #: the "modified vs original" overhead measurement of Table 1)
        self.total_scanned = 0

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[DataMessage]:
        return iter(self._items)

    def append(self, msg: DataMessage) -> None:
        """Store a newly arrived (but unwanted or drained) message."""
        self._items.append(msg)
        self.total_appended += 1

    def prepend_all(self, msgs: Iterable[DataMessage]) -> None:
        """Insert the forwarded list *in order* ahead of local messages.

        Fig. 7 line 3: contents of the migrating process's
        received-message-list go in front of the local one, so messages
        captured in transit are consumed before anything newer.
        """
        self._items.extendleft(reversed(list(msgs)))

    def find(self, src: Rank | None = ANY, tag: int | None = ANY
             ) -> DataMessage | None:
        """Remove and return the oldest message matching ``(src, tag)``.

        Returns ``None`` when no stored message matches. Scan cost is
        recorded in :attr:`total_scanned`.
        """
        for i, msg in enumerate(self._items):
            if msg.matches(src, tag):
                self.total_scanned += i + 1
                del self._items[i]
                return msg
        self.total_scanned += len(self._items)
        return None

    def take_all(self) -> list[DataMessage]:
        """Remove and return everything (migrate() shipping the list)."""
        out = list(self._items)
        self._items.clear()
        return out

    def __repr__(self) -> str:
        return f"<ReceivedMessageList n={len(self._items)}>"

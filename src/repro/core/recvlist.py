"""The received-message-list (paper Sections 3.1-3.2).

A user-level FIFO buffer of data messages that have arrived at a process
but have not yet been consumed by the application. It exists because:

* draining channels during migration stores in-transit messages *before*
  the application asks for them;
* a receive for a specific ``(src, tag)`` may pull unrelated messages off
  the wire, which must be kept for later receives;
* on the initialized process, the migrating process's forwarded list is
  *prepended* ("ListA is read before ListB") — the mechanism behind the
  ordering proof of Theorem 3.

Implementation: instead of the paper-literal linear scan, messages are
indexed by ``(src, tag)`` into per-key FIFO queues ordered by a global
arrival sequence number. An exact-match ``find`` is O(1); a wildcard
``find`` takes the minimum head sequence over the candidate keys (the
distinct keys for one src/tag, not the stored messages), so a receive on
a hot channel no longer degrades with how many unrelated messages are
buffered. Delivery order is *identical* to the linear scan: the oldest
matching message wins, everything else keeps its place.

:attr:`total_scanned` still reports what the paper's linear scan *would*
have touched (the matched message's position, or the full length on a
miss) — it drives the Table 1 list-search cost model and must not change
meaning just because the search got faster.
"""

from __future__ import annotations

from bisect import bisect_left
from collections import deque
from typing import Iterable, Iterator

from repro.core.messages import ANY, DataMessage
from repro.vm.ids import Rank

__all__ = ["ReceivedMessageList"]


class ReceivedMessageList:
    """Ordered store of undelivered :class:`DataMessage` objects."""

    def __init__(self) -> None:
        #: arrival sequence -> message, for every live entry
        self._by_seq: dict[int, DataMessage] = {}
        #: live sequences in FIFO (ascending) order
        self._live: list[int] = []
        #: (src, tag) -> FIFO of live sequences for that key
        self._key_q: dict[tuple, deque[int]] = {}
        #: src -> keys seen for it; tag -> keys seen for it (wildcards)
        self._src_keys: dict[Rank, set[tuple]] = {}
        self._tag_keys: dict[int, set[tuple]] = {}
        self._next_seq = 0
        self._min_seq = 0
        #: total messages ever appended (protocol accounting)
        self.total_appended = 0
        #: entries scanned by find() calls (drives the list-search cost and
        #: the "modified vs original" overhead measurement of Table 1)
        self.total_scanned = 0
        #: optional per-find observer, called with each find's equivalent
        #: linear-scan length (the observability layer points this at a
        #: histogram's ``record``)
        self.scan_hook = None

    def __len__(self) -> int:
        return len(self._live)

    def __iter__(self) -> Iterator[DataMessage]:
        return (self._by_seq[s] for s in self._live)

    def _insert(self, seq: int, msg: DataMessage) -> None:
        self._by_seq[seq] = msg
        key = (msg.src, msg.tag)
        q = self._key_q.get(key)
        if q is None:
            q = self._key_q[key] = deque()
            self._src_keys.setdefault(msg.src, set()).add(key)
            self._tag_keys.setdefault(msg.tag, set()).add(key)
        q.append(seq)

    def append(self, msg: DataMessage) -> None:
        """Store a newly arrived (but unwanted or drained) message."""
        seq = self._next_seq
        self._next_seq = seq + 1
        self._live.append(seq)
        self._insert(seq, msg)
        self.total_appended += 1

    def prepend_all(self, msgs: Iterable[DataMessage]) -> None:
        """Insert the forwarded list *in order* ahead of local messages.

        Fig. 7 line 3: contents of the migrating process's
        received-message-list go in front of the local one, so messages
        captured in transit are consumed before anything newer. The batch
        gets sequence numbers below every existing entry; within the
        batch, original order is kept.
        """
        batch = list(msgs)
        if not batch:
            return
        base = self._min_seq - len(batch)
        self._min_seq = base
        seqs = list(range(base, base + len(batch)))
        # Per-key queues must stay sorted: the new seqs precede everything
        # live, and keys may interleave, so rebuild the affected queues.
        affected: dict[tuple, list[int]] = {}
        for seq, msg in zip(seqs, batch):
            self._by_seq[seq] = msg
            affected.setdefault((msg.src, msg.tag), []).append(seq)
        for key, new_seqs in affected.items():
            q = self._key_q.get(key)
            if q is None:
                self._key_q[key] = deque(new_seqs)
                self._src_keys.setdefault(key[0], set()).add(key)
                self._tag_keys.setdefault(key[1], set()).add(key)
            else:
                q.extendleft(reversed(new_seqs))
        self._live[:0] = seqs

    def _candidate_keys(self, src: Rank | None, tag: int | None):
        if src is not ANY:
            return self._src_keys.get(src, ())
        return self._tag_keys.get(tag, ())

    def find(self, src: Rank | None = ANY, tag: int | None = ANY
             ) -> DataMessage | None:
        """Remove and return the oldest message matching ``(src, tag)``.

        Returns ``None`` when no stored message matches. Scan cost is
        recorded in :attr:`total_scanned` as the equivalent linear-scan
        work (position of the match, or full length on a miss).
        """
        key = None
        if src is not ANY and tag is not ANY:
            if (src, tag) in self._key_q:
                key = (src, tag)
        elif src is ANY and tag is ANY:
            if self._live:
                head = self._live[0]
                msg = self._by_seq[head]
                key = (msg.src, msg.tag)
        else:
            best = None
            for k in self._candidate_keys(src, tag):
                head = self._key_q[k][0]
                if best is None or head < best:
                    best = head
                    key = k
        if key is None:
            self.total_scanned += len(self._live)
            if self.scan_hook is not None:
                self.scan_hook(len(self._live))
            return None
        q = self._key_q[key]
        seq = q.popleft()
        if not q:
            del self._key_q[key]
            self._src_keys[key[0]].discard(key)
            self._tag_keys[key[1]].discard(key)
        msg = self._by_seq.pop(seq)
        idx = bisect_left(self._live, seq)
        del self._live[idx]
        self.total_scanned += idx + 1
        if self.scan_hook is not None:
            self.scan_hook(idx + 1)
        return msg

    def take_all(self) -> list[DataMessage]:
        """Remove and return everything (migrate() shipping the list)."""
        out = [self._by_seq[s] for s in self._live]
        self._by_seq.clear()
        self._live.clear()
        self._key_q.clear()
        self._src_keys.clear()
        self._tag_keys.clear()
        return out

    def __repr__(self) -> str:
        return f"<ReceivedMessageList n={len(self._live)}>"

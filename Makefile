# Developer entry points. Everything runs against the in-tree sources.
export PYTHONPATH := src

.PHONY: test fast stress bench bench-directory bench-fastpath bench-recovery bench-gang obs-smoke obs-svg shard-smoke recovery-smoke gang-smoke

test:   ## tier-1 verify: the full suite (virtual time keeps it quick)
	python -m pytest -x -q

fast:   ## the suite minus the seeded fault-injection stress runs
	python -m pytest -q -m "not stress"

stress: ## fault-adversarial runs checked against the paper's theorems
	python -m pytest tests/stress -q

bench:  ## regenerate the paper's tables/figures (print with -s)
	python -m pytest benchmarks/ --benchmark-only -q

bench-directory: ## directory-backend ablation; writes BENCH_directory.json
	python -m pytest benchmarks/test_ablation_directory.py --benchmark-only -q -s

bench-fastpath: ## migration fast path A/B ablation; writes BENCH_fastpath.json
	python -m pytest benchmarks/test_ablation_fastpath.py --benchmark-only -q -s

bench-recovery: ## time-to-recover vs checkpoint interval; writes BENCH_recovery.json
	python -m pytest benchmarks/test_ablation_recovery.py --benchmark-only -q -s

bench-gang: ## concurrent gang-migration geometry; the gang section of BENCH_fastpath.json
	python -m pytest benchmarks/test_ablation_fastpath.py -k gang_migration --benchmark-only -q -s

obs-smoke: ## real mp migration with event collection on; validates the JSONL artifact and its space-time SVG
	REPRO_OBS_SMOKE=1 python -m pytest tests/integration/test_obs_mp.py -q

obs-svg: ## run a real mp migration and render the clock-aligned space-time SVG
	python -m repro obs run --out obs_events.jsonl --no-report
	python -m repro obs svg obs_events.jsonl --out obs_spacetime.svg
	python -c "import xml.etree.ElementTree as ET; ET.fromstring(open('obs_spacetime.svg').read()); print('obs_spacetime.svg: well-formed XML')"

shard-smoke: ## SIGKILL a live shard daemon during an mp migration workload
	REPRO_SHARD_SMOKE=1 python -m pytest tests/stress/test_shard_crash_mp.py -q

recovery-smoke: ## SIGKILL a rank and a shard mid-run; digest-identical completion
	REPRO_RECOVERY_SMOKE=1 python -m pytest tests/stress/test_crash_recovery_mp.py -q -s

gang-smoke: ## two overlapping mp migrations under a shared bandwidth budget; digest-identical completion
	REPRO_GANG_SMOKE=1 python -m pytest tests/stress/test_gang_crash_mp.py -q -s
